//! Deterministic tree families.

use crate::{Tree, TreeBuilder};

/// A path with `edges` edges hanging below the root (depth = `edges`).
pub fn path(edges: usize) -> Tree {
    let mut b = TreeBuilder::with_capacity(edges + 1);
    let root = b.root();
    b.add_path(root, edges);
    b.build()
}

/// A star: `leaves` children directly below the root (depth 1, `Δ = leaves`).
pub fn star(leaves: usize) -> Tree {
    let mut b = TreeBuilder::with_capacity(leaves + 1);
    let root = b.root();
    for _ in 0..leaves {
        b.add_child(root);
    }
    b.build()
}

/// A complete binary tree of the given depth.
pub fn binary(depth: usize) -> Tree {
    complete_bary(2, depth)
}

/// A complete `arity`-ary tree of the given depth
/// (`(arity^{depth+1} - 1)/(arity - 1)` nodes).
///
/// # Panics
///
/// Panics if `arity == 0`.
pub fn complete_bary(arity: usize, depth: usize) -> Tree {
    assert!(arity >= 1, "arity must be positive");
    let mut b = TreeBuilder::new();
    let mut frontier = vec![b.root()];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * arity);
        for v in frontier {
            for _ in 0..arity {
                next.push(b.add_child(v));
            }
        }
        frontier = next;
    }
    b.build()
}

/// A caterpillar: a spine of `spine` edges where every spine node
/// (including the root, excluding the tip) carries `legs` pendant leaves.
pub fn caterpillar(spine: usize, legs: usize) -> Tree {
    let mut b = TreeBuilder::with_capacity(spine * (legs + 1) + 1);
    let mut cur = b.root();
    for _ in 0..spine {
        for _ in 0..legs {
            b.add_child(cur);
        }
        cur = b.add_child(cur);
    }
    b.build()
}

/// A spider: `legs` disjoint paths of `leg_len` edges from the root.
pub fn spider(legs: usize, leg_len: usize) -> Tree {
    let mut b = TreeBuilder::with_capacity(legs * leg_len + 1);
    let root = b.root();
    for _ in 0..legs {
        b.add_path(root, leg_len);
    }
    b.build()
}

/// A comb: a spine of `spine` edges; each spine node (including the root)
/// roots a pendant path ("tooth") of `tooth` edges.
///
/// Depth is `spine + tooth` (the tooth of the spine tip is the deepest).
pub fn comb(spine: usize, tooth: usize) -> Tree {
    let mut b = TreeBuilder::with_capacity((spine + 1) * tooth + spine + 1);
    let mut cur = b.root();
    for _ in 0..spine {
        b.add_path(cur, tooth);
        cur = b.add_child(cur);
    }
    b.add_path(cur, tooth);
    b.build()
}

/// A broom: a handle path of `handle` edges ending in `bristles` paths of
/// `bristle_len` edges each. Deep and skinny on top, parallel at the
/// bottom — the shape that motivates `BFDN_ℓ`.
pub fn broom(handle: usize, bristles: usize, bristle_len: usize) -> Tree {
    let mut b = TreeBuilder::with_capacity(handle + bristles * bristle_len + 1);
    let root = b.root();
    let hub = b.add_path(root, handle);
    for _ in 0..bristles {
        b.add_path(hub, bristle_len);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let t = path(7);
        assert_eq!(t.len(), 8);
        assert_eq!(t.depth(), 7);
        assert_eq!(t.max_degree(), 2);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn path_zero_edges() {
        let t = path(0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn star_shape() {
        let t = star(9);
        assert_eq!(t.len(), 10);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.max_degree(), 9);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn complete_binary_counts() {
        let t = binary(4);
        assert_eq!(t.len(), 31);
        assert_eq!(t.depth(), 4);
        assert_eq!(t.max_degree(), 3);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn complete_ternary_counts() {
        let t = complete_bary(3, 3);
        assert_eq!(t.len(), 1 + 3 + 9 + 27);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn arity_one_is_a_path() {
        let t = complete_bary(1, 5);
        assert_eq!(t.len(), 6);
        assert_eq!(t.depth(), 5);
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar(5, 3);
        assert_eq!(t.len(), 5 * 4 + 1);
        assert_eq!(t.depth(), 5);
        // Spine nodes: parent + legs + next spine.
        assert_eq!(t.max_degree(), 5);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn spider_shape() {
        let t = spider(4, 6);
        assert_eq!(t.len(), 25);
        assert_eq!(t.depth(), 6);
        assert_eq!(t.max_degree(), 4);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn comb_shape() {
        let t = comb(3, 2);
        // 4 spine nodes (incl. root) each with a 2-tooth + 3 spine edges.
        assert_eq!(t.len(), 4 * 2 + 3 + 1);
        assert_eq!(t.depth(), 5);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn broom_shape() {
        let t = broom(10, 4, 3);
        assert_eq!(t.len(), 10 + 12 + 1);
        assert_eq!(t.depth(), 13);
        assert_eq!(t.max_degree(), 5);
        assert!(t.validate().is_ok());
    }
}
