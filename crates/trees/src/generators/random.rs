//! Randomized tree families.

use crate::tree::Tree;
use crate::{NodeId, TreeBuilder};
use rand::Rng;

/// A uniform random recursive tree on `n` nodes: node `i` attaches to a
/// uniformly random earlier node. Expected depth is `Θ(log n)` — the bushy
/// regime where `BFDN` is order-optimal.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_recursive(n: usize, rng: &mut impl Rng) -> Tree {
    assert!(n >= 1, "need at least the root");
    let mut b = TreeBuilder::with_capacity(n);
    for i in 1..n {
        let parent = NodeId::new(rng.random_range(0..i));
        b.add_child(parent);
    }
    b.build()
}

/// A uniformly random labeled tree on `n` nodes (decoded from a random
/// Prüfer sequence), rooted at node 0. Expected depth is `Θ(√n)` — the
/// intermediate regime of Figure 1.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn uniform_labeled(n: usize, rng: &mut impl Rng) -> Tree {
    assert!(n >= 1, "need at least the root");
    if n == 1 {
        return TreeBuilder::new().build();
    }
    if n == 2 {
        let mut b = TreeBuilder::new();
        let r = b.root();
        b.add_child(r);
        return b.build();
    }
    // Prüfer decode on labels 0..n.
    let seq: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &s in &seq {
        degree[s] += 1;
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Min-leaf selection via a BinaryHeap of candidates.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut leaves: BinaryHeap<Reverse<usize>> =
        (0..n).filter(|&v| degree[v] == 1).map(Reverse).collect();
    for &s in &seq {
        let Reverse(leaf) = leaves.pop().expect("a leaf always exists");
        adj[leaf].push(s);
        adj[s].push(leaf);
        degree[s] -= 1;
        if degree[s] == 1 {
            leaves.push(Reverse(s));
        }
    }
    let Reverse(u) = leaves.pop().expect("two labels remain");
    let Reverse(v) = leaves.pop().expect("two labels remain");
    adj[u].push(v);
    adj[v].push(u);

    // Root the unrooted tree at label 0 with a BFS, mapping labels to
    // builder ids on the fly.
    let mut b = TreeBuilder::with_capacity(n);
    let mut id_of = vec![None::<NodeId>; n];
    id_of[0] = Some(b.root());
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(x) = queue.pop_front() {
        let xid = id_of[x].expect("queued labels are mapped");
        for &y in &adj[x] {
            if id_of[y].is_none() {
                id_of[y] = Some(b.add_child(xid));
                queue.push_back(y);
            }
        }
    }
    b.build()
}

/// A random tree where every node has at most `max_children` children:
/// node `i` attaches to a random earlier node that still has spare
/// capacity. With `max_children = 1` this degenerates to a path.
///
/// # Panics
///
/// Panics if `n == 0` or `max_children == 0`.
pub fn random_bounded_degree(n: usize, max_children: usize, rng: &mut impl Rng) -> Tree {
    assert!(n >= 1, "need at least the root");
    assert!(max_children >= 1, "nodes must be able to have children");
    let mut b = TreeBuilder::with_capacity(n);
    let mut open: Vec<NodeId> = vec![b.root()];
    let mut child_count = vec![0usize; n];
    for _ in 1..n {
        let slot = rng.random_range(0..open.len());
        let parent = open[slot];
        let child = b.add_child(parent);
        child_count[parent.index()] += 1;
        if child_count[parent.index()] >= max_children {
            open.swap_remove(slot);
        }
        open.push(child);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn recursive_tree_size_and_validity() {
        let mut r = rng(1);
        for n in [1usize, 2, 17, 500] {
            let t = random_recursive(n, &mut r);
            assert_eq!(t.len(), n);
            assert!(t.validate().is_ok());
        }
    }

    #[test]
    fn recursive_tree_is_shallow() {
        let mut r = rng(2);
        let t = random_recursive(10_000, &mut r);
        // Expected depth ~ e·ln n ≈ 25; 60 is a generous ceiling.
        assert!(t.depth() < 60, "depth {} too large", t.depth());
    }

    #[test]
    fn prufer_tree_size_and_validity() {
        let mut r = rng(3);
        for n in [1usize, 2, 3, 4, 33, 1000] {
            let t = uniform_labeled(n, &mut r);
            assert_eq!(t.len(), n, "n={n}");
            assert!(t.validate().is_ok(), "n={n}");
        }
    }

    #[test]
    fn prufer_depth_scales_like_sqrt() {
        let mut r = rng(4);
        let t = uniform_labeled(10_000, &mut r);
        let d = t.depth() as f64;
        let sqrt_n = 100.0;
        assert!(d > 0.2 * sqrt_n && d < 10.0 * sqrt_n, "depth {d}");
    }

    #[test]
    fn bounded_degree_respects_bound() {
        let mut r = rng(5);
        for max_c in [1usize, 2, 5] {
            let t = random_bounded_degree(300, max_c, &mut r);
            assert_eq!(t.len(), 300);
            assert!(t.validate().is_ok());
            for v in t.node_ids() {
                assert!(t.children(v).len() <= max_c);
            }
        }
    }

    #[test]
    fn bounded_degree_one_is_path() {
        let mut r = rng(6);
        let t = random_bounded_degree(50, 1, &mut r);
        assert_eq!(t.depth(), 49);
    }

    #[test]
    fn determinism_per_seed() {
        let a = random_recursive(100, &mut rng(7));
        let b = random_recursive(100, &mut rng(7));
        assert_eq!(a.depth(), b.depth());
        for v in a.node_ids() {
            assert_eq!(a.parent(v), b.parent(v));
        }
    }
}
