//! Workload generators: the tree families used throughout the experiments.
//!
//! Deterministic families live in `basic`, randomized families in
//! `random`, and the adversarial families built to stress the CTE
//! baseline (experiment E6) in `adversarial`. All functions are
//! re-exported here.
//!
//! # Example
//!
//! ```
//! use bfdn_trees::generators;
//! use rand::SeedableRng;
//!
//! let comb = generators::comb(10, 4);
//! assert_eq!(comb.depth(), 14);
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let random = generators::random_recursive(100, &mut rng);
//! assert_eq!(random.len(), 100);
//! ```

mod adversarial;
mod basic;
mod random;

pub use adversarial::{
    decoy_spine, hidden_pocket, lopsided_vine, spider_with_pockets, uneven_star,
};
pub use basic::{binary, broom, caterpillar, comb, complete_bary, path, spider, star};
pub use random::{random_bounded_degree, random_recursive, uniform_labeled};

use crate::Tree;

/// A named tree family with a default laptop-scale instance, used by the
/// experiment harness to sweep over heterogeneous workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// A single path (the pure-depth extreme).
    Path,
    /// A star (the pure-width extreme).
    Star,
    /// Complete binary tree.
    Binary,
    /// Caterpillar: spine with pendant legs.
    Caterpillar,
    /// Spider: legs of equal length from the root.
    Spider,
    /// Comb: spine with pendant paths ("teeth").
    Comb,
    /// Broom: a handle path ending in a star of bristle paths.
    Broom,
    /// Uniform random recursive tree.
    RandomRecursive,
    /// Uniform random labeled tree (Prüfer decode).
    UniformLabeled,
    /// Random tree with bounded number of children.
    RandomBoundedDegree,
}

impl Family {
    /// All families, in a fixed order used by sweeps and reports.
    pub const ALL: [Family; 10] = [
        Family::Path,
        Family::Star,
        Family::Binary,
        Family::Caterpillar,
        Family::Spider,
        Family::Comb,
        Family::Broom,
        Family::RandomRecursive,
        Family::UniformLabeled,
        Family::RandomBoundedDegree,
    ];

    /// A short identifier for reports.
    pub fn name(self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Star => "star",
            Family::Binary => "binary",
            Family::Caterpillar => "caterpillar",
            Family::Spider => "spider",
            Family::Comb => "comb",
            Family::Broom => "broom",
            Family::RandomRecursive => "random-recursive",
            Family::UniformLabeled => "uniform-labeled",
            Family::RandomBoundedDegree => "random-bounded-degree",
        }
    }

    /// Builds an instance with roughly `n` nodes, using `rng` for the
    /// randomized families.
    pub fn instance(self, n: usize, rng: &mut impl rand::Rng) -> Tree {
        let n = n.max(2);
        match self {
            Family::Path => path(n - 1),
            Family::Star => star(n - 1),
            Family::Binary => {
                // Smallest complete binary tree with at least n nodes.
                let mut d = 1;
                while (1usize << (d + 1)) - 1 < n {
                    d += 1;
                }
                binary(d)
            }
            Family::Caterpillar => {
                let spine = (n / 4).max(1);
                let legs = (n.saturating_sub(spine) / spine.max(1)).max(1);
                caterpillar(spine, legs)
            }
            Family::Spider => {
                let legs = (n as f64).sqrt().ceil() as usize;
                let leg_len = (n / legs.max(1)).max(1);
                spider(legs, leg_len)
            }
            Family::Comb => {
                let spine = (n as f64).sqrt().ceil() as usize;
                let tooth = (n / spine.max(1)).max(1);
                comb(spine, tooth)
            }
            Family::Broom => {
                let handle = n / 2;
                let bristles = (n as f64 / 2.0).sqrt().ceil() as usize;
                let blen = (n / 2 / bristles.max(1)).max(1);
                broom(handle, bristles, blen)
            }
            Family::RandomRecursive => random_recursive(n, rng),
            Family::UniformLabeled => uniform_labeled(n, rng),
            Family::RandomBoundedDegree => random_bounded_degree(n, 3, rng),
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn every_family_builds_valid_trees() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for fam in Family::ALL {
            for n in [2usize, 10, 257] {
                let t = fam.instance(n, &mut rng);
                assert!(t.validate().is_ok(), "{fam} n={n}: {:?}", t.validate());
                assert!(t.len() >= 2, "{fam} produced a trivial tree");
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Family::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::ALL.len());
    }
}
