//! Undirected port-numbered graphs — the substrate for the Section 4.3
//! extension (exploration of non-tree graphs).

use crate::{NodeId, Port};
use std::fmt;

/// One endpoint of an edge as seen from a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Endpoint {
    /// The neighbour reached through this port.
    pub node: NodeId,
    /// The port at the neighbour leading back here.
    pub back: Port,
}

/// An undirected graph whose adjacency lists are port-numbered: the edges
/// at node `v` occupy ports `0..deg(v)` in insertion order.
///
/// Built with [`GraphBuilder`]. Used with the robots-know-their-distance
/// assumption of Proposition 9 — see [`Graph::bfs_distances`].
///
/// # Example
///
/// ```
/// use bfdn_trees::{GraphBuilder, NodeId};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId::new(0), NodeId::new(1));
/// b.add_edge(NodeId::new(1), NodeId::new(2));
/// b.add_edge(NodeId::new(0), NodeId::new(2));
/// let g = b.build();
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.bfs_distances(NodeId::new(0)), vec![Some(0), Some(1), Some(1)]);
/// ```
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    adj: Vec<Vec<Endpoint>>,
    num_edges: usize,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Maximum degree `Δ`.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The endpoint behind port `p` of `v`, or `None` if out of range.
    #[inline]
    pub fn endpoint(&self, v: NodeId, p: Port) -> Option<Endpoint> {
        self.adj[v.index()].get(p.index()).copied()
    }

    /// All endpoints of `v` in port order.
    #[inline]
    pub fn endpoints(&self, v: NodeId) -> &[Endpoint] {
        &self.adj[v.index()]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.adj.len()).map(NodeId::new)
    }

    /// BFS distances from `origin`; `None` for unreachable nodes.
    ///
    /// Under Proposition 9's assumption, robots located at `v` know
    /// exactly `bfs_distances(origin)[v]`.
    pub fn bfs_distances(&self, origin: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.len()];
        let mut queue = std::collections::VecDeque::from([origin]);
        dist[origin.index()] = Some(0);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("queued nodes have distances");
            for e in &self.adj[u.index()] {
                if dist[e.node.index()].is_none() {
                    dist[e.node.index()] = Some(du + 1);
                    queue.push_back(e.node);
                }
            }
        }
        dist
    }

    /// The eccentricity of `origin` restricted to its reachable component
    /// — the "radius `D`" of Proposition 9.
    pub fn radius_from(&self, origin: NodeId) -> usize {
        self.bfs_distances(origin)
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if all nodes are reachable from `origin`.
    pub fn is_connected_from(&self, origin: NodeId) -> bool {
        self.bfs_distances(origin).iter().all(Option::is_some)
    }

    /// Checks port symmetry invariants; used in tests.
    pub fn validate(&self) -> Result<(), String> {
        for v in self.node_ids() {
            for (p, e) in self.adj[v.index()].iter().enumerate() {
                let back = self
                    .endpoint(e.node, e.back)
                    .ok_or_else(|| format!("{v}:{p} back-port out of range"))?;
                if back.node != v || back.back.index() != p {
                    return Err(format!("{v}:{p} not symmetric"));
                }
            }
        }
        let half_edges: usize = self.adj.iter().map(Vec::len).sum();
        if half_edges != 2 * self.num_edges {
            return Err("edge count mismatch".into());
        }
        Ok(())
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.len())
            .field("edges", &self.num_edges())
            .finish()
    }
}

/// Builds a [`Graph`] edge by edge.
///
/// # Example
///
/// ```
/// use bfdn_trees::{GraphBuilder, NodeId};
/// let mut b = GraphBuilder::new(2);
/// b.add_edge(NodeId::new(0), NodeId::new(1));
/// let g = b.build();
/// assert_eq!(g.degree(NodeId::new(0)), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    adj: Vec<Vec<Endpoint>>,
    num_edges: usize,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` if the builder has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Appends a new isolated node.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.adj.len());
        self.adj.push(Vec::new());
        id
    }

    /// Adds an undirected edge between `u` and `v`, assigning the next
    /// free port at each endpoint.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range nodes.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert_ne!(u, v, "self-loops are not part of the model");
        assert!(u.index() < self.adj.len() && v.index() < self.adj.len());
        let pu = Port::new(self.adj[u.index()].len());
        let pv = Port::new(self.adj[v.index()].len());
        self.adj[u.index()].push(Endpoint { node: v, back: pv });
        self.adj[v.index()].push(Endpoint { node: u, back: pu });
        self.num_edges += 1;
    }

    /// Finalizes the graph.
    pub fn build(self) -> Graph {
        Graph {
            adj: self.adj,
            num_edges: self.num_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 2-0, 2-3
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(2));
        b.add_edge(NodeId::new(2), NodeId::new(0));
        b.add_edge(NodeId::new(2), NodeId::new(3));
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(NodeId::new(2)), 3);
        assert_eq!(g.max_degree(), 3);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn port_symmetry() {
        let g = triangle_plus_tail();
        for v in g.node_ids() {
            for (p, e) in g.endpoints(v).iter().enumerate() {
                let back = g.endpoint(e.node, e.back).unwrap();
                assert_eq!(back.node, v);
                assert_eq!(back.back.index(), p);
            }
        }
    }

    #[test]
    fn bfs_distances_and_radius() {
        let g = triangle_plus_tail();
        let d = g.bfs_distances(NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(1), Some(2)]);
        assert_eq!(g.radius_from(NodeId::new(0)), 2);
        assert!(g.is_connected_from(NodeId::new(0)));
    }

    #[test]
    fn disconnected_detected() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let g = b.build();
        assert!(!g.is_connected_from(NodeId::new(0)));
        assert_eq!(g.bfs_distances(NodeId::new(0))[2], None);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(NodeId::new(0), NodeId::new(0));
    }

    #[test]
    fn add_node_grows() {
        let mut b = GraphBuilder::new(0);
        let a = b.add_node();
        let c = b.add_node();
        b.add_edge(a, c);
        let g = b.build();
        assert_eq!(g.len(), 2);
        assert_eq!(g.num_edges(), 1);
    }
}
