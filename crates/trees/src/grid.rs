//! Grid graphs with rectangular obstacles — the concrete non-tree setting
//! of Proposition 9 (following Ortolf–Schindelhauer \[12\]).
//!
//! Cells are unit squares of a `width × height` grid; rectangular regions
//! can be carved out as obstacles. Robots start at the origin cell
//! `(0, 0)` and, per the paper's assumption, know their exact distance to
//! the origin at all times.

use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// An axis-aligned rectangle of blocked cells, inclusive of `x0, y0`,
/// exclusive of `x1, y1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: usize,
    /// Bottom edge (inclusive).
    pub y0: usize,
    /// Right edge (exclusive).
    pub x1: usize,
    /// Top edge (exclusive).
    pub y1: usize,
}

impl Rect {
    /// Creates a rectangle; normalizes so `x0 <= x1`, `y0 <= y1`.
    pub fn new(x0: usize, y0: usize, x1: usize, y1: usize) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Returns `true` if the cell `(x, y)` lies inside this rectangle.
    #[inline]
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }
}

/// A grid graph with rectangular obstacles.
///
/// # Example
///
/// ```
/// use bfdn_trees::grid::{GridGraph, Rect};
/// let grid = GridGraph::new(4, 3, &[Rect::new(1, 1, 2, 2)]);
/// let g = grid.graph();
/// assert_eq!(g.len(), 11); // 12 cells minus 1 obstacle
/// assert!(g.is_connected_from(grid.origin()));
/// ```
#[derive(Clone, Debug)]
pub struct GridGraph {
    width: usize,
    height: usize,
    /// `cell_to_node[y * width + x]`, `None` for obstacle cells.
    cell_to_node: Vec<Option<NodeId>>,
    node_to_cell: Vec<(usize, usize)>,
    graph: Graph,
}

impl GridGraph {
    /// Builds the grid graph of all non-obstacle cells of a
    /// `width × height` grid, with 4-adjacency.
    ///
    /// # Panics
    ///
    /// Panics if the origin cell `(0, 0)` is blocked or the grid is empty.
    pub fn new(width: usize, height: usize, obstacles: &[Rect]) -> Self {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        let blocked = |x: usize, y: usize| obstacles.iter().any(|r| r.contains(x, y));
        assert!(!blocked(0, 0), "origin cell must be free");

        let mut cell_to_node = vec![None; width * height];
        let mut node_to_cell = Vec::new();
        let mut builder = GraphBuilder::new(0);
        for y in 0..height {
            for x in 0..width {
                if !blocked(x, y) {
                    let id = builder.add_node();
                    cell_to_node[y * width + x] = Some(id);
                    node_to_cell.push((x, y));
                }
            }
        }
        for y in 0..height {
            for x in 0..width {
                if let Some(v) = cell_to_node[y * width + x] {
                    if x + 1 < width {
                        if let Some(u) = cell_to_node[y * width + x + 1] {
                            builder.add_edge(v, u);
                        }
                    }
                    if y + 1 < height {
                        if let Some(u) = cell_to_node[(y + 1) * width + x] {
                            builder.add_edge(v, u);
                        }
                    }
                }
            }
        }
        GridGraph {
            width,
            height,
            cell_to_node,
            node_to_cell,
            graph: builder.build(),
        }
    }

    /// The underlying port-numbered graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The node of the origin cell `(0, 0)` where robots start.
    #[inline]
    pub fn origin(&self) -> NodeId {
        self.cell_to_node[0].expect("origin checked free at construction")
    }

    /// Grid width in cells.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The node of cell `(x, y)`, or `None` if blocked / out of range.
    pub fn node_at(&self, x: usize, y: usize) -> Option<NodeId> {
        if x >= self.width || y >= self.height {
            return None;
        }
        self.cell_to_node[y * self.width + x]
    }

    /// The cell of node `v`.
    #[inline]
    pub fn cell_of(&self, v: NodeId) -> (usize, usize) {
        self.node_to_cell[v.index()]
    }

    /// Renders the grid: `D` marks the origin (dock), `.` free cells,
    /// `#` obstacles; row 0 is drawn at the bottom.
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                out.push(match self.node_at(x, y) {
                    _ if (x, y) == (0, 0) => 'D',
                    Some(_) => '.',
                    None => '#',
                });
            }
            out.push('\n');
        }
        out
    }

    /// Returns `true` if every free cell's BFS distance from the origin
    /// equals its Manhattan distance `x + y` — the property \[12\] exploits
    /// for grids with "nice" rectangular obstacles.
    pub fn distances_are_manhattan(&self) -> bool {
        let dist = self.graph.bfs_distances(self.origin());
        self.graph.node_ids().all(|v| {
            let (x, y) = self.cell_of(v);
            dist[v.index()] == Some(x + y)
        })
    }
}

/// Samples `count` random rectangular obstacles inside a `width × height`
/// grid (each at most `max_side` on a side, never covering the origin).
/// Convenience for randomized Proposition 9 workloads; the resulting grid
/// may be disconnected — check
/// [`Graph::is_connected_from`](crate::Graph::is_connected_from).
pub fn random_obstacles(
    width: usize,
    height: usize,
    count: usize,
    max_side: usize,
    rng: &mut impl Rng,
) -> Vec<Rect> {
    let mut rects = Vec::with_capacity(count);
    let side = max_side.max(1);
    while rects.len() < count {
        let w = rng.random_range(1..=side);
        let h = rng.random_range(1..=side);
        let x0 = rng.random_range(0..width.max(1));
        let y0 = rng.random_range(0..height.max(1));
        let r = Rect::new(x0, y0, (x0 + w).min(width), (y0 + h).min(height));
        if !r.contains(0, 0) {
            rects.push(r);
        }
    }
    rects
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_counts() {
        let g = GridGraph::new(3, 3, &[]);
        assert_eq!(g.graph().len(), 9);
        assert_eq!(g.graph().num_edges(), 12);
        assert!(g.graph().validate().is_ok());
        assert!(g.distances_are_manhattan());
    }

    #[test]
    fn obstacle_removes_cells_and_edges() {
        let g = GridGraph::new(3, 3, &[Rect::new(1, 1, 2, 2)]);
        assert_eq!(g.graph().len(), 8);
        assert_eq!(g.graph().num_edges(), 8);
        assert!(g.node_at(1, 1).is_none());
        assert!(g.graph().is_connected_from(g.origin()));
    }

    #[test]
    fn small_central_obstacle_keeps_manhattan() {
        // A single cell blocked away from the axes keeps monotone paths.
        let g = GridGraph::new(5, 5, &[Rect::new(2, 2, 3, 3)]);
        assert!(g.distances_are_manhattan());
    }

    #[test]
    fn wall_breaks_manhattan() {
        // A wall spanning the bottom rows forces a detour.
        let g = GridGraph::new(5, 5, &[Rect::new(2, 0, 3, 4)]);
        assert!(!g.distances_are_manhattan());
        assert!(g.graph().is_connected_from(g.origin()));
    }

    #[test]
    fn cell_node_roundtrip() {
        let g = GridGraph::new(4, 2, &[]);
        for y in 0..2 {
            for x in 0..4 {
                let v = g.node_at(x, y).unwrap();
                assert_eq!(g.cell_of(v), (x, y));
            }
        }
        assert_eq!(g.node_at(4, 0), None);
    }

    #[test]
    #[should_panic(expected = "origin cell must be free")]
    fn blocked_origin_panics() {
        GridGraph::new(2, 2, &[Rect::new(0, 0, 1, 1)]);
    }

    #[test]
    fn rect_normalization() {
        let r = Rect::new(3, 4, 1, 2);
        assert_eq!(r, Rect::new(1, 2, 3, 4));
        assert!(r.contains(1, 2));
        assert!(!r.contains(3, 4));
    }

    #[test]
    fn ascii_rendering_marks_cells() {
        let g = GridGraph::new(3, 2, &[Rect::new(1, 1, 2, 2)]);
        assert_eq!(g.to_ascii(), ".#.\nD..\n");
    }

    #[test]
    fn random_obstacles_avoid_origin() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let rects = random_obstacles(12, 9, 20, 4, &mut rng);
        assert_eq!(rects.len(), 20);
        for r in &rects {
            assert!(!r.contains(0, 0));
            assert!(r.x1 <= 12 && r.y1 <= 9);
        }
        // A grid built from them is constructible (may be disconnected).
        let g = GridGraph::new(12, 9, &rects);
        assert!(g.graph().validate().is_ok());
    }

    #[test]
    fn radius_matches_grid_dimensions() {
        let g = GridGraph::new(6, 4, &[]);
        assert_eq!(g.graph().radius_from(g.origin()), 5 + 3);
    }
}
