//! Tree and graph substrates for collaborative exploration.
//!
//! This crate provides everything the BFDN reproduction needs to *stand on*:
//!
//! * [`Tree`] — an arena-based rooted tree with the port-numbering
//!   convention of the paper (port `0` leads to the parent at every
//!   non-root node),
//! * [`PartialTree`] — the fog-of-war view maintained during online
//!   exploration: explored nodes, discovered edges and *dangling* edges,
//! * [`generators`] — the workload families used by the experiments
//!   (paths, stars, b-ary trees, caterpillars, spiders, combs, brooms,
//!   random trees, and adversarial families for the CTE baseline),
//! * [`Graph`] and [`grid`] — non-tree substrates for the Section 4.3
//!   extension (grid graphs with rectangular obstacles).
//!
//! # Example
//!
//! ```
//! use bfdn_trees::{Tree, TreeBuilder};
//!
//! let mut b = TreeBuilder::new();
//! let root = b.root();
//! let a = b.add_child(root);
//! let _b2 = b.add_child(root);
//! let _c = b.add_child(a);
//! let tree: Tree = b.build();
//! assert_eq!(tree.len(), 4);
//! assert_eq!(tree.depth(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod generators;
mod graph;
pub mod grid;
mod node;
mod partial;
mod tree;

pub use builder::TreeBuilder;
pub use graph::{Endpoint, Graph, GraphBuilder};
pub use node::{NodeId, Port};
pub use partial::{KnownNode, PartialTree};
pub use tree::Tree;
