//! Identifier newtypes shared by all substrates.

use std::fmt;

/// Identifier of a node inside a [`Tree`](crate::Tree) or
/// [`Graph`](crate::Graph) arena.
///
/// Node identifiers are dense indices (`0..len`). The root of a tree is
/// always `NodeId::ROOT`, i.e. index `0`.
///
/// # Example
///
/// ```
/// use bfdn_trees::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert!(NodeId::ROOT.is_root());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(u32);

impl NodeId {
    /// The root node of every tree arena.
    pub const ROOT: NodeId = NodeId(0);

    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for the tree root (index 0).
    #[inline]
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// A port number local to a node.
///
/// The endpoints of the edges adjacent to a node are numbered from `0` to
/// `deg - 1`. Following Section 4.1 of the paper, port `0` leads to the
/// parent at every node other than the root; downward ports start at `1`
/// (at the root they start at `0`).
///
/// # Example
///
/// ```
/// use bfdn_trees::Port;
/// assert!(Port::UP.is_up());
/// assert_eq!(Port::new(2).index(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Port(u16);

impl Port {
    /// The port leading to the parent (`0`) at non-root nodes.
    pub const UP: Port = Port(0);

    /// Creates a port from its local index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u16` (no workload in this
    /// workspace has nodes of degree beyond `u16::MAX`).
    #[inline]
    pub fn new(index: usize) -> Self {
        Port(u16::try_from(index).expect("port index exceeds u16::MAX"))
    }

    /// Returns the local index of this port.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is port `0`, i.e. the parent port at
    /// non-root nodes.
    #[inline]
    pub fn is_up(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        for i in [0usize, 1, 7, 1 << 20] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn root_is_root() {
        assert!(NodeId::ROOT.is_root());
        assert!(!NodeId::new(1).is_root());
    }

    #[test]
    fn port_up() {
        assert!(Port::UP.is_up());
        assert!(!Port::new(1).is_up());
        assert_eq!(Port::new(5).index(), 5);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(Port::new(1) < Port::new(2));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", NodeId::new(4)), "n4");
        assert_eq!(format!("{:?}", Port::new(4)), "p4");
        assert_eq!(format!("{}", NodeId::new(4)), "4");
    }
}
