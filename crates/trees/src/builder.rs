//! Incremental construction of [`Tree`]s.

use crate::tree::NodeData;
use crate::{NodeId, Tree};

/// Builds a [`Tree`] one node at a time.
///
/// The builder starts with a root; every further node is attached below an
/// existing node with [`add_child`](TreeBuilder::add_child). Children are
/// assigned ports in insertion order.
///
/// # Example
///
/// ```
/// use bfdn_trees::TreeBuilder;
/// let mut b = TreeBuilder::new();
/// let root = b.root();
/// let mid = b.add_child(root);
/// b.add_child(mid);
/// let tree = b.build();
/// assert_eq!(tree.depth(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct TreeBuilder {
    nodes: Vec<NodeData>,
}

impl TreeBuilder {
    /// Creates a builder holding only the root node.
    pub fn new() -> Self {
        TreeBuilder {
            nodes: vec![NodeData {
                parent: None,
                children: Vec::new(),
                depth: 0,
            }],
        }
    }

    /// Creates a builder that will grow to roughly `n` nodes without
    /// reallocating.
    pub fn with_capacity(n: usize) -> Self {
        let mut b = TreeBuilder::new();
        b.nodes.reserve(n.saturating_sub(1));
        b
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Number of nodes added so far (including the root).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if only the root exists.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Current depth of a node.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created by this builder.
    #[inline]
    pub fn depth(&self, v: NodeId) -> usize {
        self.nodes[v.index()].depth as usize
    }

    /// Attaches a new node below `parent` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` was not created by this builder.
    pub fn add_child(&mut self, parent: NodeId) -> NodeId {
        let depth = self.nodes[parent.index()].depth + 1;
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(NodeData {
            parent: Some(parent),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Attaches a downward path of `len` edges below `parent`, returning
    /// the deepest node (`parent` itself when `len == 0`).
    pub fn add_path(&mut self, parent: NodeId, len: usize) -> NodeId {
        let mut cur = parent;
        for _ in 0..len {
            cur = self.add_child(cur);
        }
        cur
    }

    /// Finalizes the tree.
    pub fn build(self) -> Tree {
        Tree::from_nodes(self.nodes)
    }

    /// Builds a tree from a parent array: `parents[i]` is the parent of
    /// node `i + 1` and must be smaller than `i + 1` (parents precede
    /// children, as in all arenas of this crate).
    ///
    /// # Panics
    ///
    /// Panics if some `parents[i] > i`.
    ///
    /// # Example
    ///
    /// ```
    /// use bfdn_trees::TreeBuilder;
    /// // root -> 1, root -> 2, 2 -> 3
    /// let tree = TreeBuilder::from_parents(&[0, 0, 2]);
    /// assert_eq!(tree.len(), 4);
    /// assert_eq!(tree.depth(), 2);
    /// ```
    pub fn from_parents(parents: &[usize]) -> Tree {
        let mut b = TreeBuilder::with_capacity(parents.len() + 1);
        for (i, &p) in parents.iter().enumerate() {
            assert!(p <= i, "parent {p} of node {} not yet created", i + 1);
            b.add_child(NodeId::new(p));
        }
        b.build()
    }
}

impl Default for TreeBuilder {
    fn default() -> Self {
        TreeBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_tree() {
        let t = TreeBuilder::new().build();
        assert_eq!(t.len(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.max_degree(), 0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn add_path_returns_deepest() {
        let mut b = TreeBuilder::new();
        let root = b.root();
        let tip = b.add_path(root, 4);
        assert_eq!(b.depth(tip), 4);
        let t = b.build();
        assert_eq!(t.depth(), 4);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn add_path_zero_is_identity() {
        let mut b = TreeBuilder::new();
        let root = b.root();
        assert_eq!(b.add_path(root, 0), root);
    }

    #[test]
    fn children_keep_insertion_order() {
        let mut b = TreeBuilder::new();
        let root = b.root();
        let c1 = b.add_child(root);
        let c2 = b.add_child(root);
        let t = b.build();
        assert_eq!(t.children(NodeId::ROOT), &[c1, c2]);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = TreeBuilder::with_capacity(100);
        assert!(b.is_empty());
        let root = b.root();
        b.add_child(root);
        assert_eq!(b.len(), 2);
    }
}
