//! The immutable rooted tree arena.

use crate::{NodeId, Port};
use std::fmt;

#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub(crate) struct NodeData {
    /// Parent node; `None` only for the root.
    pub(crate) parent: Option<NodeId>,
    /// Children in port order (child `i` is reached through port `i + 1`
    /// at non-root nodes, port `i` at the root).
    pub(crate) children: Vec<NodeId>,
    /// Distance to the root.
    pub(crate) depth: u32,
}

/// An immutable rooted tree stored in an arena.
///
/// Nodes are identified by dense [`NodeId`]s; the root is always
/// [`NodeId::ROOT`]. Edge endpoints are numbered with [`Port`]s following
/// the paper's convention: at every non-root node, port `0` leads to the
/// parent and ports `1..deg` lead to the children; at the root, ports
/// `0..deg` lead to the children.
///
/// Construct trees with [`TreeBuilder`](crate::TreeBuilder) or one of the
/// [`generators`](crate::generators).
///
/// # Example
///
/// ```
/// use bfdn_trees::generators;
/// let tree = generators::path(5);
/// assert_eq!(tree.len(), 6); // a path with 5 edges has 6 nodes
/// assert_eq!(tree.depth(), 5);
/// assert_eq!(tree.max_degree(), 2);
/// ```
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tree {
    pub(crate) nodes: Vec<NodeData>,
    depth: u32,
    max_degree: usize,
}

impl Tree {
    pub(crate) fn from_nodes(nodes: Vec<NodeData>) -> Self {
        assert!(!nodes.is_empty(), "a tree has at least its root");
        let depth = nodes.iter().map(|n| n.depth).max().unwrap_or(0);
        let max_degree = nodes
            .iter()
            .map(|n| n.children.len() + usize::from(n.parent.is_some()))
            .max()
            .unwrap_or(0);
        Tree {
            nodes,
            depth,
            max_degree,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree is just its root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of edges (`n - 1`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Depth `D` of the tree: the maximum distance from the root.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Maximum degree `Δ` over all nodes (counting the parent edge).
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Depth `δ(v)` of a node.
    #[inline]
    pub fn node_depth(&self, v: NodeId) -> usize {
        self.nodes[v.index()].depth as usize
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.nodes[v.index()].parent
    }

    /// Children of `v` in port order.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.nodes[v.index()].children
    }

    /// Degree of `v` (children plus the parent edge when present).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let d = &self.nodes[v.index()];
        d.children.len() + usize::from(d.parent.is_some())
    }

    /// The node reached from `v` through local port `p`.
    ///
    /// Returns `None` if `p` is out of range. At a non-root node, port 0
    /// is the parent; at the root all ports are children.
    pub fn neighbor(&self, v: NodeId, p: Port) -> Option<NodeId> {
        let d = &self.nodes[v.index()];
        match d.parent {
            Some(parent) if p.is_up() => Some(parent),
            Some(_) => d.children.get(p.index() - 1).copied(),
            None => d.children.get(p.index()).copied(),
        }
    }

    /// The port at `v` leading to child `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not a child of `v`.
    pub fn port_to_child(&self, v: NodeId, c: NodeId) -> Port {
        let d = &self.nodes[v.index()];
        let pos = d
            .children
            .iter()
            .position(|&x| x == c)
            .expect("not a child of this node");
        if d.parent.is_some() {
            Port::new(pos + 1)
        } else {
            Port::new(pos)
        }
    }

    /// The downward ports of `v` (those leading to children).
    pub fn child_ports(&self, v: NodeId) -> impl Iterator<Item = (Port, NodeId)> + '_ {
        let d = &self.nodes[v.index()];
        let off = usize::from(d.parent.is_some());
        d.children
            .iter()
            .enumerate()
            .map(move |(i, &c)| (Port::new(i + off), c))
    }

    /// Iterates over all node ids in index order (a valid BFS-compatible
    /// topological order for builder-produced trees: parents precede
    /// children).
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// The path from `v` up to and including the root.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.node_depth(v) + 1);
        let mut cur = Some(v);
        while let Some(u) = cur {
            path.push(u);
            cur = self.parent(u);
        }
        path
    }

    /// The path from the root down to `v` (inclusive on both ends).
    pub fn path_from_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut p = self.path_to_root(v);
        p.reverse();
        p
    }

    /// Lowest common ancestor of `u` and `v`.
    pub fn lca(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut a, mut b) = (u, v);
        while self.node_depth(a) > self.node_depth(b) {
            a = self.parent(a).expect("non-root has a parent");
        }
        while self.node_depth(b) > self.node_depth(a) {
            b = self.parent(b).expect("non-root has a parent");
        }
        while a != b {
            a = self.parent(a).expect("non-root has a parent");
            b = self.parent(b).expect("non-root has a parent");
        }
        a
    }

    /// Distance (number of edges) between `u` and `v`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> usize {
        let l = self.lca(u, v);
        self.node_depth(u) + self.node_depth(v) - 2 * self.node_depth(l)
    }

    /// Number of nodes in the subtree rooted at `v` (including `v`).
    pub fn subtree_size(&self, v: NodeId) -> usize {
        let mut count = 0;
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            count += 1;
            stack.extend_from_slice(self.children(u));
        }
        count
    }

    /// `true` if `anc` is an ancestor of `v` (or `v` itself).
    pub fn is_ancestor(&self, anc: NodeId, v: NodeId) -> bool {
        let mut cur = Some(v);
        while let Some(u) = cur {
            if u == anc {
                return true;
            }
            if self.node_depth(u) <= self.node_depth(anc) {
                return false;
            }
            cur = self.parent(u);
        }
        false
    }

    /// Nodes in pre-order (depth-first, children in port order).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![NodeId::ROOT];
        while let Some(u) = stack.pop() {
            out.push(u);
            // Push children reversed so the lowest port is visited first.
            for &c in self.children(u).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The closed Euler tour of a depth-first traversal: the sequence of
    /// nodes visited by a single robot performing DFS from the root and
    /// returning, of length `2(n-1) + 1`.
    pub fn euler_tour(&self) -> Vec<NodeId> {
        // Iterative traversal: recursion depth would equal the tree depth,
        // which exceeds the stack budget on the deep workloads.
        let mut tour = Vec::with_capacity(2 * self.len());
        let mut stack: Vec<(NodeId, usize)> = vec![(NodeId::ROOT, 0)];
        tour.push(NodeId::ROOT);
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let children = self.children(u);
            if *next < children.len() {
                let c = children[*next];
                *next += 1;
                tour.push(c);
                stack.push((c, 0));
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    tour.push(p);
                }
            }
        }
        tour
    }

    /// Checks structural invariants; used by tests and generators.
    ///
    /// Verifies that parent/child pointers are mutually consistent, depths
    /// increase by one along edges, and every node is reachable from the
    /// root.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty arena".into());
        }
        if self.nodes[0].parent.is_some() {
            return Err("root has a parent".into());
        }
        if self.nodes[0].depth != 0 {
            return Err("root depth is not zero".into());
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![NodeId::ROOT];
        let mut reached = 0usize;
        while let Some(u) = stack.pop() {
            if seen[u.index()] {
                return Err(format!("node {u} reached twice"));
            }
            seen[u.index()] = true;
            reached += 1;
            for &c in self.children(u) {
                if self.parent(c) != Some(u) {
                    return Err(format!("child {c} of {u} has wrong parent"));
                }
                if self.node_depth(c) != self.node_depth(u) + 1 {
                    return Err(format!("child {c} of {u} has wrong depth"));
                }
                stack.push(c);
            }
        }
        if reached != self.len() {
            return Err(format!(
                "{} of {} nodes unreachable",
                self.len() - reached,
                self.len()
            ));
        }
        Ok(())
    }

    /// Renders the tree in Graphviz DOT format (for small trees).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph tree {\n");
        for v in self.node_ids() {
            for &c in self.children(v) {
                s.push_str(&format!("  {} -> {};\n", v, c));
            }
        }
        s.push_str("}\n");
        s
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tree")
            .field("n", &self.len())
            .field("depth", &self.depth())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tree(n={}, D={}, Δ={})",
            self.len(),
            self.depth(),
            self.max_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{generators, NodeId, Port, TreeBuilder};

    fn sample() -> crate::Tree {
        // root -> a, b ; a -> c, d ; d -> e
        let mut b = TreeBuilder::new();
        let root = b.root();
        let a = b.add_child(root);
        let _bn = b.add_child(root);
        let _c = b.add_child(a);
        let d = b.add_child(a);
        let _e = b.add_child(d);
        b.build()
    }

    #[test]
    fn basic_queries() {
        let t = sample();
        assert_eq!(t.len(), 6);
        assert_eq!(t.num_edges(), 5);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.max_degree(), 3); // node `a` has parent + 2 children
        assert!(t.validate().is_ok());
    }

    #[test]
    fn ports_respect_convention() {
        let t = sample();
        let root = NodeId::ROOT;
        let a = NodeId::new(1);
        // Root ports start at 0 with children.
        assert_eq!(t.neighbor(root, Port::new(0)), Some(a));
        // Non-root port 0 is the parent.
        assert_eq!(t.neighbor(a, Port::UP), Some(root));
        assert_eq!(t.neighbor(a, Port::new(1)), Some(NodeId::new(3)));
        assert_eq!(t.port_to_child(a, NodeId::new(3)), Port::new(1));
        assert_eq!(t.port_to_child(root, a), Port::new(0));
    }

    #[test]
    fn neighbor_out_of_range_is_none() {
        let t = sample();
        assert_eq!(t.neighbor(NodeId::ROOT, Port::new(9)), None);
    }

    #[test]
    fn lca_and_distance() {
        let t = sample();
        let c = NodeId::new(3);
        let e = NodeId::new(5);
        assert_eq!(t.lca(c, e), NodeId::new(1));
        assert_eq!(t.distance(c, e), 3);
        assert_eq!(t.distance(c, c), 0);
        assert_eq!(t.lca(NodeId::ROOT, e), NodeId::ROOT);
    }

    #[test]
    fn subtree_sizes() {
        let t = sample();
        assert_eq!(t.subtree_size(NodeId::ROOT), 6);
        assert_eq!(t.subtree_size(NodeId::new(1)), 4);
        assert_eq!(t.subtree_size(NodeId::new(2)), 1);
    }

    #[test]
    fn ancestor_checks() {
        let t = sample();
        assert!(t.is_ancestor(NodeId::ROOT, NodeId::new(5)));
        assert!(t.is_ancestor(NodeId::new(4), NodeId::new(5)));
        assert!(t.is_ancestor(NodeId::new(4), NodeId::new(4)));
        assert!(!t.is_ancestor(NodeId::new(2), NodeId::new(5)));
    }

    #[test]
    fn euler_tour_has_expected_length() {
        let t = sample();
        let tour = t.euler_tour();
        assert_eq!(tour.len(), 2 * t.num_edges() + 1);
        assert_eq!(tour.first(), Some(&NodeId::ROOT));
        assert_eq!(tour.last(), Some(&NodeId::ROOT));
        // Consecutive entries are adjacent.
        for w in tour.windows(2) {
            assert_eq!(t.distance(w[0], w[1]), 1);
        }
    }

    #[test]
    fn euler_tour_deep_path_does_not_overflow() {
        let t = generators::path(50_000);
        let tour = t.euler_tour();
        assert_eq!(tour.len(), 2 * t.num_edges() + 1);
    }

    #[test]
    fn preorder_visits_everything_once() {
        let t = sample();
        let order = t.preorder();
        assert_eq!(order.len(), t.len());
        let mut seen = vec![false; t.len()];
        for v in order {
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
    }

    #[test]
    fn path_from_root() {
        let t = sample();
        assert_eq!(
            t.path_from_root(NodeId::new(5)),
            vec![NodeId::ROOT, NodeId::new(1), NodeId::new(4), NodeId::new(5)]
        );
    }

    #[test]
    fn dot_output_contains_edges() {
        let t = sample();
        let dot = t.to_dot();
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("4 -> 5"));
    }
}
