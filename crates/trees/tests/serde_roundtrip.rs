//! Round-trip tests for the optional serde support (run with
//! `cargo test -p bfdn-trees --features serde`).

#![cfg(feature = "serde")]

use bfdn_trees::{generators, NodeId, Port, Tree};

/// The workspace deliberately has no JSON dependency, so the round-trip
/// goes through serde's self-describing value tree: serialize to a
/// `serde::Value`, deserialize back, and compare.
#[test]
fn serde_traits_are_derived() {
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    assert_serde::<Tree>();
    assert_serde::<NodeId>();
    assert_serde::<Port>();
    assert_serde::<bfdn_trees::grid::Rect>();
    assert_serde::<bfdn_trees::Endpoint>();
}

#[test]
fn tree_round_trips_through_serde_values() {
    let t = generators::comb(4, 2);
    let v = serde::to_value(&t);
    assert_ne!(v, serde::Value::Unit, "a tree must serialize to real data");

    let u: Tree = serde::from_value(&v).expect("tree deserializes");
    assert_eq!(t.len(), u.len());
    for n in t.node_ids() {
        assert_eq!(t.parent(n), u.parent(n));
    }
    assert_eq!(serde::to_value(&u), v, "re-serialization is stable");
}

#[test]
fn node_ids_round_trip_through_serde_values() {
    let t = generators::comb(3, 3);
    for n in t.node_ids() {
        let back: NodeId = serde::from_value(&serde::to_value(&n)).expect("node id deserializes");
        assert_eq!(n, back);
    }
}

#[test]
fn trees_survive_a_clone_after_generation() {
    // Structural sanity that the serde-annotated types still behave.
    let t = generators::comb(4, 2);
    let u = t.clone();
    assert_eq!(t.len(), u.len());
    for v in t.node_ids() {
        assert_eq!(t.parent(v), u.parent(v));
    }
}
