//! Round-trip tests for the optional serde support (run with
//! `cargo test -p bfdn-trees --features serde`).

#![cfg(feature = "serde")]

use bfdn_trees::{generators, NodeId, Port, Tree};

/// A tiny hand-rolled JSON check via serde's token-less path: we encode
/// with `serde_json`-free plumbing by round-tripping through
/// `serde::Serialize` into a `Vec<u8>` using `postcard`-style... — the
/// workspace deliberately has no JSON dependency, so we assert the
/// *derive* wiring compiles and round-trips through a minimal in-crate
/// serializer: `serde_test`-less structural equality via `Debug`.
///
/// In practice this test exercises that `Serialize`/`Deserialize` are
/// derived on the public data structures without pulling a format crate
/// into the default build.
#[test]
fn serde_traits_are_derived() {
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    assert_serde::<Tree>();
    assert_serde::<NodeId>();
    assert_serde::<Port>();
    assert_serde::<bfdn_trees::grid::Rect>();
    assert_serde::<bfdn_trees::Endpoint>();
}

#[test]
fn trees_survive_a_clone_after_generation() {
    // Structural sanity that the serde-annotated types still behave.
    let t = generators::comb(4, 2);
    let u = t.clone();
    assert_eq!(t.len(), u.len());
    for v in t.node_ids() {
        assert_eq!(t.parent(v), u.parent(v));
    }
}
