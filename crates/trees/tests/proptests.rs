//! Property-based tests on the tree substrate.

use bfdn_trees::generators::{self, Family};
use bfdn_trees::{NodeId, PartialTree, Tree, TreeBuilder};
use proptest::prelude::*;
use rand::SeedableRng;

/// Builds an arbitrary tree from a parent-choice vector: node `i + 1`
/// attaches below node `choices[i] % (i + 1)`.
fn tree_from_choices(choices: &[usize]) -> Tree {
    let mut b = TreeBuilder::with_capacity(choices.len() + 1);
    for (i, &c) in choices.iter().enumerate() {
        b.add_child(NodeId::new(c % (i + 1)));
    }
    b.build()
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    prop::collection::vec(any::<usize>(), 0..200).prop_map(|c| tree_from_choices(&c))
}

proptest! {
    #[test]
    fn validate_accepts_all_built_trees(t in arb_tree()) {
        prop_assert!(t.validate().is_ok());
    }

    #[test]
    fn depth_equals_max_node_depth(t in arb_tree()) {
        let max = t.node_ids().map(|v| t.node_depth(v)).max().unwrap();
        prop_assert_eq!(t.depth(), max);
    }

    #[test]
    fn subtree_sizes_sum_to_descendant_counts(t in arb_tree()) {
        // Root subtree is everything; each child partition sums to n - 1.
        prop_assert_eq!(t.subtree_size(NodeId::ROOT), t.len());
        let child_sum: usize = t
            .children(NodeId::ROOT)
            .iter()
            .map(|&c| t.subtree_size(c))
            .sum();
        prop_assert_eq!(child_sum, t.len() - 1);
    }

    #[test]
    fn euler_tour_traverses_every_edge_twice(t in arb_tree()) {
        let tour = t.euler_tour();
        prop_assert_eq!(tour.len(), 2 * t.num_edges() + 1);
        let mut uses = std::collections::HashMap::new();
        for w in tour.windows(2) {
            let key = if w[0] < w[1] { (w[0], w[1]) } else { (w[1], w[0]) };
            *uses.entry(key).or_insert(0usize) += 1;
        }
        prop_assert!(uses.values().all(|&c| c == 2));
        prop_assert_eq!(uses.len(), t.num_edges());
    }

    #[test]
    fn lca_is_common_ancestor(t in arb_tree(), a in any::<usize>(), b in any::<usize>()) {
        let u = NodeId::new(a % t.len());
        let v = NodeId::new(b % t.len());
        let l = t.lca(u, v);
        prop_assert!(t.is_ancestor(l, u));
        prop_assert!(t.is_ancestor(l, v));
        // No deeper common ancestor exists: l's children covering u also
        // covering v would contradict maximality.
        for &c in t.children(l) {
            prop_assert!(!(t.is_ancestor(c, u) && t.is_ancestor(c, v)));
        }
    }

    #[test]
    fn distance_is_a_metric_on_samples(t in arb_tree(), a in any::<usize>(), b in any::<usize>(), c in any::<usize>()) {
        let u = NodeId::new(a % t.len());
        let v = NodeId::new(b % t.len());
        let w = NodeId::new(c % t.len());
        prop_assert_eq!(t.distance(u, u), 0);
        prop_assert_eq!(t.distance(u, v), t.distance(v, u));
        prop_assert!(t.distance(u, w) <= t.distance(u, v) + t.distance(v, w));
    }

    /// Revealing the whole tree through PartialTree::attach in BFS order
    /// reconstructs exactly the ground truth.
    #[test]
    fn partial_tree_full_reveal_matches_ground_truth(t in arb_tree()) {
        let mut pt = PartialTree::new(t.len(), t.degree(NodeId::ROOT));
        let mut queue = std::collections::VecDeque::from([NodeId::ROOT]);
        while let Some(u) = queue.pop_front() {
            for (port, c) in t.child_ports(u) {
                pt.attach(u, port, c, t.degree(c));
                queue.push_back(c);
            }
        }
        prop_assert!(pt.is_complete());
        prop_assert_eq!(pt.num_explored(), t.len());
        prop_assert!(pt.validate().is_ok());
        for v in t.node_ids() {
            prop_assert_eq!(pt.depth(v), t.node_depth(v));
            prop_assert_eq!(pt.parent(v), t.parent(v));
            prop_assert_eq!(pt.degree(v), t.degree(v));
        }
    }

    /// Partial reveals keep counters consistent at every step.
    #[test]
    fn partial_tree_invariants_hold_mid_reveal(t in arb_tree(), stop in any::<usize>()) {
        let mut pt = PartialTree::new(t.len(), t.degree(NodeId::ROOT));
        let mut revealed = 0usize;
        let budget = stop % t.len();
        'outer: for u in t.preorder() {
            if !pt.is_explored(u) {
                continue;
            }
            for (port, c) in t.child_ports(u) {
                if revealed >= budget {
                    break 'outer;
                }
                pt.attach(u, port, c, t.degree(c));
                revealed += 1;
            }
        }
        prop_assert!(pt.validate().is_ok());
        let open_count = pt
            .explored_nodes()
            .iter()
            .filter(|&&v| pt.is_open(v))
            .count();
        let recomputed: usize = pt
            .explored_nodes()
            .iter()
            .map(|&v| pt.dangling_ports(v).count())
            .sum();
        prop_assert_eq!(recomputed, pt.total_dangling());
        if pt.total_dangling() > 0 {
            prop_assert!(open_count > 0);
            prop_assert!(pt.min_open_depth().is_some());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn family_instances_scale(n in 2usize..600, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for fam in Family::ALL {
            let t = fam.instance(n, &mut rng);
            prop_assert!(t.validate().is_ok());
            // Every family lands within a constant factor of the target.
            prop_assert!(t.len() >= n / 8, "{} produced {} nodes for n={}", fam, t.len(), n);
        }
    }

    #[test]
    fn generators_depth_contract(spine in 1usize..50, legs in 1usize..6) {
        let t = generators::caterpillar(spine, legs);
        prop_assert_eq!(t.depth(), spine);
        prop_assert_eq!(t.len(), spine * (legs + 1) + 1);
        let s = generators::spider(legs, spine);
        prop_assert_eq!(s.depth(), spine);
        prop_assert_eq!(s.len(), legs * spine + 1);
    }
}
