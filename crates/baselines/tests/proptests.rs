//! Property-based tests for the baselines: arbitrary trees, arbitrary
//! team sizes.

use bfdn_baselines::{Cte, OfflineSplit, OnlineDfs, ScriptedExplorer};
use bfdn_sim::Simulator;
use bfdn_trees::{NodeId, Tree, TreeBuilder};
use proptest::prelude::*;

fn tree_from_choices(choices: &[usize]) -> Tree {
    let mut b = TreeBuilder::with_capacity(choices.len() + 1);
    for (i, &c) in choices.iter().enumerate() {
        b.add_child(NodeId::new(c % (i + 1)));
    }
    b.build()
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    prop::collection::vec(any::<usize>(), 1..200).prop_map(|c| tree_from_choices(&c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DFS is exactly 2(n-1) on every tree.
    #[test]
    fn dfs_is_optimal_everywhere(tree in arb_tree()) {
        let outcome = Simulator::new(&tree, 1).run(&mut OnlineDfs).unwrap();
        prop_assert_eq!(outcome.rounds, 2 * tree.num_edges() as u64);
    }

    /// Offline plans are valid covers within the 2(n/k + D) budget and
    /// replay exactly through the simulator.
    #[test]
    fn offline_plans_always_valid(tree in arb_tree(), k in 1usize..20) {
        let plan = OfflineSplit::plan(&tree, k);
        prop_assert!(plan.validate(&tree).is_ok());
        let budget = ((2 * tree.num_edges()).div_ceil(k) + 2 * tree.depth()) as u64;
        prop_assert!(plan.rounds() <= budget);
        let routes = (0..k).map(|i| plan.route(i).to_vec()).collect();
        let mut script = ScriptedExplorer::from_routes(&tree, routes);
        let outcome = Simulator::new(&tree, k).run(&mut script).unwrap();
        prop_assert_eq!(outcome.rounds, plan.rounds());
        prop_assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
    }

    /// CTE respects the FGKP envelope with a generous constant on
    /// arbitrary trees.
    #[test]
    fn cte_stays_in_the_fgkp_envelope(tree in arb_tree(), k in 2usize..20) {
        let mut cte = Cte::new(k);
        let outcome = Simulator::new(&tree, k).run(&mut cte).unwrap();
        let guarantee = 16.0
            * (tree.len() as f64 / (k as f64).ln() + tree.depth() as f64 + 1.0);
        prop_assert!(
            (outcome.rounds as f64) <= guarantee,
            "{} > {guarantee} on {tree} k={k}", outcome.rounds
        );
    }
}
