//! Single-robot online depth-first search.

use bfdn_sim::{Explorer, Move, RoundContext};

/// The optimal single-robot online explorer: go through an adjacent
/// unexplored edge if possible, one step towards the root otherwise
/// (Section 1). Finishes any tree in exactly `2(n-1)` rounds.
///
/// With `k > 1` robots, every robot runs the same rule but dangling
/// edges are claimed at most once per round, so surplus robots trail the
/// leader — DFS does not parallelize, which is the paper's motivation
/// for collaborative strategies.
///
/// # Example
///
/// ```
/// use bfdn_baselines::OnlineDfs;
/// use bfdn_sim::Simulator;
/// use bfdn_trees::generators;
///
/// let tree = generators::spider(3, 4);
/// let outcome = Simulator::new(&tree, 1).run(&mut OnlineDfs)?;
/// assert_eq!(outcome.rounds, 2 * tree.num_edges() as u64);
/// # Ok::<(), bfdn_sim::SimError>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineDfs;

impl Explorer for OnlineDfs {
    #[allow(clippy::needless_range_loop)]
    fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
        let mut selected = std::collections::HashSet::new();
        for i in 0..ctx.k() {
            let at = ctx.positions[i];
            let mut chosen = None;
            for port in ctx.tree.dangling_ports(at) {
                if selected.insert((at, port)) {
                    chosen = Some(port);
                    break;
                }
            }
            out[i] = match chosen {
                Some(port) => Move::Down(port),
                None => Move::Up,
            };
        }
    }

    fn name(&self) -> &str {
        "online-dfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfdn_sim::Simulator;
    use bfdn_trees::generators::{self, Family};
    use rand::SeedableRng;

    #[test]
    fn dfs_is_exactly_2n_minus_2() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for fam in Family::ALL {
            let tree = fam.instance(120, &mut rng);
            let outcome = Simulator::new(&tree, 1).run(&mut OnlineDfs).unwrap();
            assert_eq!(
                outcome.rounds,
                2 * tree.num_edges() as u64,
                "{fam}: DFS is optimal at 2(n-1)"
            );
        }
    }

    #[test]
    fn extra_robots_do_not_break_dfs() {
        let tree = generators::comb(8, 3);
        for k in [2usize, 5] {
            let outcome = Simulator::new(&tree, k).run(&mut OnlineDfs).unwrap();
            // Multiple identical DFS walkers still finish (possibly faster
            // thanks to claimed-once dangling edges).
            assert!(outcome.rounds <= 2 * tree.num_edges() as u64);
        }
    }
}
