//! CTE — Collective Tree Exploration (Fraigniaud, Gasieniec, Kowalski,
//! Pelc \[10\]).
//!
//! The even-split strategy: at every round, the robots standing at a
//! node whose explored subtree still contains dangling edges divide
//! themselves as evenly as possible among the "unfinished" directions
//! (adjacent dangling edges and children with unfinished subtrees);
//! robots at a finished node walk up. CTE explores any tree in
//! `O(n/log k + D)` rounds and its competitive ratio `Θ(k/log k)` is
//! tight \[11\] — experiment E6 reproduces the lower-bound side, where
//! BFDN's additive-overhead guarantee wins.

use bfdn_sim::{Explorer, Move, RoundContext};
use bfdn_trees::{NodeId, PartialTree, Port};
use std::collections::{HashMap, HashSet};

/// The CTE explorer (complete-communication model).
///
/// # Example
///
/// ```
/// use bfdn_baselines::Cte;
/// use bfdn_sim::Simulator;
/// use bfdn_trees::generators;
///
/// let tree = generators::binary(5);
/// let mut cte = Cte::new(16);
/// let outcome = Simulator::new(&tree, 16).run(&mut cte)?;
/// assert!(outcome.rounds >= 2 * tree.depth() as u64);
/// # Ok::<(), bfdn_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Cte {
    k: usize,
    /// Dangling edges inside the explored subtree of each explored node.
    subtree_open: HashMap<NodeId, u64>,
    /// Dangling selections made last round, to account once applied.
    pending: HashSet<(NodeId, Port)>,
    initialized: bool,
}

impl Cte {
    /// Creates the explorer for `k` robots.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one robot");
        Cte {
            k,
            subtree_open: HashMap::new(),
            pending: HashSet::new(),
            initialized: false,
        }
    }

    /// Number of robots `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Folds last round's discoveries into the subtree-open counters.
    fn sync(&mut self, tree: &PartialTree) {
        if !self.initialized {
            self.subtree_open
                .insert(NodeId::ROOT, tree.degree(NodeId::ROOT) as u64);
            self.initialized = true;
        }
        let pending: Vec<_> = self.pending.drain().collect();
        for (u, port) in pending {
            let child = tree
                .child_at(u, port)
                .expect("selected dangling moves are applied");
            let child_open = (tree.degree(child) - 1) as u64;
            self.subtree_open.insert(child, child_open);
            // The traversal consumed one dangling edge and revealed
            // `deg(child) - 1` new ones; propagate the delta upward.
            let mut cur = Some(u);
            while let Some(v) = cur {
                let e = self
                    .subtree_open
                    .get_mut(&v)
                    .expect("ancestors are explored");
                *e = *e + child_open - 1;
                cur = tree.parent(v);
            }
        }
    }

    fn open_in_subtree(&self, v: NodeId) -> u64 {
        self.subtree_open.get(&v).copied().unwrap_or(0)
    }
}

impl Explorer for Cte {
    fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
        debug_assert_eq!(ctx.k(), self.k, "robot count changed mid-run");
        let tree = ctx.tree;
        self.sync(tree);
        // Group robots by node.
        let mut groups: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for i in 0..self.k {
            groups.entry(ctx.positions[i]).or_default().push(i);
        }
        let mut nodes: Vec<NodeId> = groups.keys().copied().collect();
        nodes.sort_unstable();
        for v in nodes {
            let robots = &groups[&v];
            if self.open_in_subtree(v) == 0 {
                // Finished subtree: everyone heads home.
                for &i in robots {
                    out[i] = Move::Up; // ⊥ at the root
                }
                continue;
            }
            // Unfinished directions: dangling ports, then children with
            // unfinished subtrees, in port order.
            let mut candidates: Vec<Port> = tree.dangling_ports(v).collect();
            candidates.extend(
                tree.known_children(v)
                    .filter(|&(_, c)| self.open_in_subtree(c) > 0)
                    .map(|(p, _)| p),
            );
            candidates.sort_unstable();
            debug_assert!(
                !candidates.is_empty(),
                "positive subtree-open count implies an unfinished direction"
            );
            for (j, &i) in robots.iter().enumerate() {
                let port = candidates[j % candidates.len()];
                if tree.child_at(v, port).is_none() {
                    self.pending.insert((v, port));
                }
                out[i] = Move::Down(port);
            }
        }
    }

    fn name(&self) -> &str {
        "cte"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfdn_sim::Simulator;
    use bfdn_trees::generators::{self, Family};
    use rand::SeedableRng;

    fn run_cte(tree: &bfdn_trees::Tree, k: usize) -> u64 {
        let mut cte = Cte::new(k);
        Simulator::new(tree, k)
            .run(&mut cte)
            .unwrap_or_else(|e| panic!("cte stuck on {tree} with k={k}: {e}"))
            .rounds
    }

    #[test]
    fn explores_all_families() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for fam in Family::ALL {
            let tree = fam.instance(120, &mut rng);
            for k in [1usize, 2, 6, 16] {
                let rounds = run_cte(&tree, k);
                assert!(rounds >= 2 * tree.depth() as u64, "{fam} k={k}");
            }
        }
    }

    #[test]
    fn single_robot_cte_is_dfs() {
        let tree = generators::comb(6, 4);
        assert_eq!(run_cte(&tree, 1), 2 * tree.num_edges() as u64);
    }

    #[test]
    fn star_with_k_robots_is_two_rounds() {
        let tree = generators::star(8);
        assert_eq!(run_cte(&tree, 8), 2);
    }

    #[test]
    fn even_split_parallelizes_binary_trees() {
        let tree = generators::binary(10); // 2047 nodes
        let r1 = run_cte(&tree, 1);
        let r16 = run_cte(&tree, 16);
        assert!(r16 * 4 < r1, "r1={r1} r16={r16}");
    }

    #[test]
    fn respects_fgkp_guarantee_shape() {
        // O(n/log k + D) with a generous constant of 8.
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for fam in [Family::Binary, Family::RandomRecursive, Family::Caterpillar] {
            let tree = fam.instance(600, &mut rng);
            for k in [4usize, 32] {
                let rounds = run_cte(&tree, k) as f64;
                let guarantee =
                    8.0 * (tree.len() as f64 / (k as f64).ln() + tree.depth() as f64 + 1.0);
                assert!(rounds <= guarantee, "{fam} k={k}: {rounds} > {guarantee}");
            }
        }
    }
}
