//! Baseline exploration algorithms the paper compares against.
//!
//! * [`OnlineDfs`] — the optimal single-robot online depth-first search
//!   (`2(n-1)` rounds, Section 1),
//! * [`OfflineSplit`] — the offline `2(n/k + D)` k-traversal: split the
//!   closed DFS tour into `k` segments and send one robot to each
//!   (Dynia et al. / Ortolf–Schindelhauer, as recalled in Section 1),
//! * [`Cte`] — Collective Tree Exploration of Fraigniaud, Gasieniec,
//!   Kowalski and Pelc: the even-split strategy with the
//!   `O(n/log k + D)` guarantee and `Θ(k/log k)` competitive ratio,
//! * [`ScriptedExplorer`] — replays precomputed per-robot routes through
//!   the simulator (used to validate offline plans round by round).
//!
//! # Example
//!
//! ```
//! use bfdn_baselines::{Cte, OnlineDfs};
//! use bfdn_sim::Simulator;
//! use bfdn_trees::generators;
//!
//! let tree = generators::binary(4);
//! let dfs = Simulator::new(&tree, 1).run(&mut OnlineDfs)?;
//! assert_eq!(dfs.rounds, 2 * tree.num_edges() as u64);
//!
//! let mut cte = Cte::new(8);
//! let team = Simulator::new(&tree, 8).run(&mut cte)?;
//! assert!(team.rounds < dfs.rounds);
//! # Ok::<(), bfdn_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cte;
mod dfs;
mod offline;
mod scripted;

pub use cte::Cte;
pub use dfs::OnlineDfs;
pub use offline::{OfflinePlan, OfflineSplit};
pub use scripted::ScriptedExplorer;
