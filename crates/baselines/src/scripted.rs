//! Replaying precomputed routes through the simulator.

use bfdn_sim::{Explorer, Move, RoundContext};
use bfdn_trees::{NodeId, Tree};

/// An explorer that executes fixed per-robot routes (node walks computed
/// offline with full knowledge of the tree). Used to validate
/// [`OfflinePlan`](crate::OfflinePlan)s against the simulator's movement
/// rules, and as the scripted arm of ablation benches.
///
/// # Example
///
/// ```
/// use bfdn_baselines::{OfflineSplit, ScriptedExplorer};
/// use bfdn_sim::Simulator;
/// use bfdn_trees::generators;
///
/// let tree = generators::spider(4, 3);
/// let plan = OfflineSplit::plan(&tree, 3);
/// let mut script = ScriptedExplorer::from_routes(
///     &tree,
///     (0..3).map(|i| plan.route(i).to_vec()).collect(),
/// );
/// let outcome = Simulator::new(&tree, 3).run(&mut script)?;
/// assert_eq!(outcome.rounds, plan.rounds());
/// # Ok::<(), bfdn_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ScriptedExplorer {
    /// Move list per robot, in execution order.
    moves: Vec<Vec<Move>>,
    cursor: usize,
}

impl ScriptedExplorer {
    /// Compiles node routes into port moves using the ground-truth tree
    /// (legitimate: scripts come from offline planners that know it).
    ///
    /// # Panics
    ///
    /// Panics if consecutive route nodes are not adjacent.
    pub fn from_routes(tree: &Tree, routes: Vec<Vec<NodeId>>) -> Self {
        let moves = routes
            .into_iter()
            .map(|route| {
                route
                    .windows(2)
                    .map(|w| {
                        if tree.parent(w[1]) == Some(w[0]) {
                            Move::Down(tree.port_to_child(w[0], w[1]))
                        } else if tree.parent(w[0]) == Some(w[1]) {
                            Move::Up
                        } else {
                            panic!("route nodes {} and {} not adjacent", w[0], w[1]);
                        }
                    })
                    .collect()
            })
            .collect();
        ScriptedExplorer { moves, cursor: 0 }
    }

    /// The scripted makespan (longest move list).
    pub fn rounds(&self) -> u64 {
        self.moves.iter().map(Vec::len).max().unwrap_or(0) as u64
    }
}

impl Explorer for ScriptedExplorer {
    #[allow(clippy::needless_range_loop)]
    fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
        for i in 0..ctx.k() {
            if let Some(script) = self.moves.get(i) {
                if let Some(&m) = script.get(self.cursor) {
                    out[i] = m;
                }
            }
        }
        self.cursor += 1;
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OfflineSplit;
    use bfdn_sim::Simulator;
    use bfdn_trees::generators::{self, Family};
    use rand::SeedableRng;

    #[test]
    fn offline_plans_replay_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for fam in [Family::Comb, Family::Binary, Family::RandomRecursive] {
            let tree = fam.instance(200, &mut rng);
            for k in [1usize, 3, 9] {
                let plan = OfflineSplit::plan(&tree, k);
                let routes = (0..k).map(|i| plan.route(i).to_vec()).collect();
                let mut script = ScriptedExplorer::from_routes(&tree, routes);
                let outcome = Simulator::new(&tree, k).run(&mut script).unwrap();
                assert_eq!(outcome.rounds, plan.rounds(), "{fam} k={k}");
                assert_eq!(
                    outcome.metrics.edges_discovered,
                    tree.num_edges() as u64,
                    "{fam} k={k}: the replayed plan must traverse every edge"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn non_adjacent_route_is_rejected() {
        let tree = generators::path(3);
        ScriptedExplorer::from_routes(&tree, vec![vec![NodeId::ROOT, NodeId::new(2)]]);
    }
}
