//! The offline `2(n/k + D)` k-traversal (Section 1).
//!
//! With the tree known in advance, take the closed DFS tour of length
//! `2(n-1)`, split it into `k` segments of `⌈2(n-1)/k⌉` hops each, and
//! send robot `i` to reach, traverse, and return from segment `i`. The
//! makespan is at most `⌈2(n-1)/k⌉ + 2D`, within a factor 2 of the
//! offline lower bound `max{2n/k, 2D}` (computing the *optimal* offline
//! k-traversal is NP-hard by reduction from 3-PARTITION \[10\]).

use bfdn_trees::{NodeId, Tree};

/// A per-robot routing plan produced by [`OfflineSplit`].
#[derive(Clone, Debug)]
pub struct OfflinePlan {
    /// Node route of each robot, starting and ending at the root.
    routes: Vec<Vec<NodeId>>,
    rounds: u64,
}

impl OfflinePlan {
    /// The makespan: rounds until the last robot is home.
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The route of robot `i` (consecutive nodes are adjacent).
    pub fn route(&self, i: usize) -> &[NodeId] {
        &self.routes[i]
    }

    /// Number of robots.
    pub fn k(&self) -> usize {
        self.routes.len()
    }

    /// Checks the plan against the tree: routes are walks from the root
    /// back to the root, and together they traverse every edge.
    pub fn validate(&self, tree: &Tree) -> Result<(), String> {
        let mut covered = vec![false; tree.len()];
        covered[0] = true;
        for (i, route) in self.routes.iter().enumerate() {
            if route.first() != Some(&NodeId::ROOT) || route.last() != Some(&NodeId::ROOT) {
                return Err(format!("robot {i}: route does not start/end at the root"));
            }
            for w in route.windows(2) {
                if tree.distance(w[0], w[1]) != 1 {
                    return Err(format!("robot {i}: {} and {} not adjacent", w[0], w[1]));
                }
                covered[w[0].index()] = true;
                covered[w[1].index()] = true;
            }
        }
        if let Some(v) = covered.iter().position(|&c| !c) {
            return Err(format!("node {v} never visited"));
        }
        Ok(())
    }
}

/// The offline segment-split traversal planner.
///
/// # Example
///
/// ```
/// use bfdn_baselines::OfflineSplit;
/// use bfdn_trees::generators;
///
/// let tree = generators::comb(10, 3);
/// let plan = OfflineSplit::plan(&tree, 4);
/// assert!(plan.validate(&tree).is_ok());
/// let bound = (2 * tree.num_edges()).div_ceil(4) + 2 * tree.depth();
/// assert!(plan.rounds() <= bound as u64);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct OfflineSplit;

impl OfflineSplit {
    /// Splits the closed DFS tour of `tree` among `k` robots.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn plan(tree: &Tree, k: usize) -> OfflinePlan {
        assert!(k >= 1, "need at least one robot");
        let tour = tree.euler_tour(); // 2(n-1) + 1 nodes
        let hops = tour.len() - 1;
        let seg = hops.div_ceil(k).max(1);
        let mut routes = Vec::with_capacity(k);
        for i in 0..k {
            let start = (i * seg).min(hops);
            let end = ((i + 1) * seg).min(hops);
            if start >= end {
                // More robots than segments: stay home.
                routes.push(vec![NodeId::ROOT]);
                continue;
            }
            let mut route = tree.path_from_root(tour[start]);
            route.extend_from_slice(&tour[start + 1..=end]);
            let back = tree.path_to_root(tour[end]);
            route.extend_from_slice(&back[1..]);
            routes.push(route);
        }
        let rounds = routes.iter().map(|r| r.len() as u64 - 1).max().unwrap_or(0);
        OfflinePlan { routes, rounds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfdn_trees::generators::{self, Family};
    use rand::SeedableRng;

    #[test]
    fn plans_are_valid_and_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for fam in Family::ALL {
            let tree = fam.instance(150, &mut rng);
            for k in [1usize, 2, 5, 16, 200] {
                let plan = OfflineSplit::plan(&tree, k);
                plan.validate(&tree)
                    .unwrap_or_else(|e| panic!("{fam} k={k}: {e}"));
                let bound = ((2 * tree.num_edges()).div_ceil(k) + 2 * tree.depth()) as u64;
                assert!(
                    plan.rounds() <= bound,
                    "{fam} k={k}: {} > {bound}",
                    plan.rounds()
                );
            }
        }
    }

    #[test]
    fn single_robot_plan_is_the_dfs_tour() {
        let tree = generators::binary(3);
        let plan = OfflineSplit::plan(&tree, 1);
        assert_eq!(plan.rounds(), 2 * tree.num_edges() as u64);
    }

    #[test]
    fn surplus_robots_stay_home() {
        let tree = generators::path(3);
        let plan = OfflineSplit::plan(&tree, 10);
        assert!(plan.validate(&tree).is_ok());
        assert_eq!(plan.route(9), &[NodeId::ROOT]);
    }

    #[test]
    fn rounds_shrink_with_k() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let tree = generators::random_recursive(2000, &mut rng);
        let r1 = OfflineSplit::plan(&tree, 1).rounds();
        let r8 = OfflineSplit::plan(&tree, 8).rounds();
        assert!(r8 * 4 < r1);
    }
}
