//! The cluster-aware client: ring routing, health checks, failover,
//! and seeded-jitter retry over persistent per-shard connections.
//!
//! Every operation routes to its key's home shard first and walks the
//! ring's failover order ([`HashRing::successors`]) when a shard is
//! unreachable — by the minimal-remap property only the dead shard's
//! keys move, and peer cache-fill means the shard that picks them up
//! usually copies rather than recomputes. Requests are idempotent
//! (results are pure functions of the spec, served through the
//! content-addressed cache), so re-issuing after a mid-call connection
//! loss is always safe.
//!
//! Backpressure ([`ErrorCode::Busy`]) retries on the *same* shard with
//! full-jitter backoff before failing over — moving a Busy key to
//! another shard would trade queue pressure for duplicate execution.
//! The jitter stream is seeded ([`ClusterConfig::jitter_seed`]), so a
//! run's retry timing is reproducible the way every other schedule in
//! this workspace is.

use crate::ring::HashRing;
use bfdn_service::client::{Client, ClientError};
use bfdn_service::protocol::{
    ErrorCode, ExploreResult, ExploreSpec, Response, StatusPayload, WireError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Tuning for one [`ClusterClient`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Wire addresses of every shard in the cluster.
    pub shards: Vec<String>,
    /// Connect budget per dial, in milliseconds — a dead or blackholed
    /// shard costs at most this much before failover moves on.
    pub connect_timeout_ms: u64,
    /// Receive budget per issued request, in milliseconds.
    pub read_timeout_ms: u64,
    /// Full passes over a key's failover order before giving up.
    pub retries: u32,
    /// Base backoff between retry passes (and Busy retries), doubled
    /// per pass and widened with seeded full jitter.
    pub backoff_ms: u64,
    /// Seed of the jitter stream; equal seeds retry on equal schedules.
    pub jitter_seed: u64,
    /// How long a shard that failed a dial or died mid-call is
    /// deprioritized (tried last instead of first) before it is probed
    /// eagerly again, in milliseconds.
    pub cooldown_ms: u64,
}

impl ClusterConfig {
    /// A default-tuned config over `shards`.
    pub fn new<I, S>(shards: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ClusterConfig {
            shards: shards.into_iter().map(Into::into).collect(),
            connect_timeout_ms: 250,
            read_timeout_ms: 30_000,
            retries: 4,
            backoff_ms: 50,
            jitter_seed: 1,
            cooldown_ms: 500,
        }
    }
}

/// Why a cluster operation failed for good.
#[derive(Debug)]
pub enum ClusterError {
    /// The config listed no shards.
    NoShards,
    /// Every candidate was tried for every retry pass.
    Exhausted {
        /// The routing key that could not be served.
        key: String,
        /// Individual issue attempts made across shards and passes.
        attempts: u32,
        /// The last per-shard failure, rendered.
        last: Option<String>,
    },
    /// A shard answered with a structured error retrying cannot fix
    /// (bad request, oversized frame, …) — it would fail on every
    /// shard.
    Server(WireError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoShards => write!(f, "cluster config lists no shards"),
            ClusterError::Exhausted {
                key,
                attempts,
                last,
            } => write!(
                f,
                "no shard could serve `{key}` after {attempts} attempts (last: {})",
                last.as_deref().unwrap_or("none reachable")
            ),
            ClusterError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl ClusterError {
    /// The non-retryable server error, when that is what ended the
    /// operation.
    pub fn as_server_error(&self) -> Option<&WireError> {
        match self {
            ClusterError::Server(e) => Some(e),
            _ => None,
        }
    }
}

/// A connected cluster client.
pub struct ClusterClient {
    ring: HashRing,
    config: ClusterConfig,
    /// Persistent per-shard connections, re-dialed on demand.
    conns: HashMap<String, Client>,
    /// Shards that recently failed, deprioritized until their deadline.
    cooling: HashMap<String, Instant>,
    rng: StdRng,
    trace: Option<u64>,
    reroutes: u64,
    last_shard: Option<String>,
}

impl ClusterClient {
    /// Builds the ring and the (lazily dialed) client.
    pub fn new(config: ClusterConfig) -> Self {
        ClusterClient {
            ring: HashRing::new(config.shards.clone()),
            rng: StdRng::seed_from_u64(config.jitter_seed),
            config,
            conns: HashMap::new(),
            cooling: HashMap::new(),
            trace: None,
            reroutes: 0,
            last_shard: None,
        }
    }

    /// Attaches (or detaches) a trace id to every subsequent explore and
    /// batch — it rides the wire envelope to whichever shard ends up
    /// serving, exactly like [`Client::set_trace`].
    pub fn set_trace(&mut self, trace: Option<u64>) {
        self.trace = trace.filter(|&id| id != 0);
    }

    /// The routing ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Operations served by a shard other than their key's home — the
    /// client-side `bfdn_cluster_reroutes_total`.
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// The shard that served the most recent successful operation.
    pub fn last_shard(&self) -> Option<&str> {
        self.last_shard.as_deref()
    }

    /// Dials (or reuses) the connection to `addr`.
    fn conn(&mut self, addr: &str) -> Result<&mut Client, ClientError> {
        if !self.conns.contains_key(addr) {
            let socket: SocketAddr = addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut addrs| addrs.next())
                .ok_or_else(|| {
                    ClientError::Io(std::io::Error::other(format!("cannot resolve `{addr}`")))
                })?;
            let client = Client::connect_timeout(
                &socket,
                Duration::from_millis(self.config.connect_timeout_ms.max(1)),
            )?;
            client.set_read_timeout(Some(Duration::from_millis(
                self.config.read_timeout_ms.max(1),
            )))?;
            self.conns.insert(addr.to_string(), client);
        }
        Ok(self.conns.get_mut(addr).expect("just inserted"))
    }

    /// Full-jitter sleep: `base * 2^pass` widened by the seeded stream.
    fn backoff(&mut self, pass: u32) {
        let base = self
            .config
            .backoff_ms
            .saturating_mul(1u64 << pass.min(5))
            .min(2_000);
        let jitter = self.rng.random_range(0..=base.max(1));
        std::thread::sleep(Duration::from_millis(base + jitter));
    }

    /// A key's candidate shards for this attempt: ring order, with
    /// shards in cooldown moved to the back (still tried — a restarted
    /// shard must be rediscovered — just not first).
    fn candidates(&self, key: &str) -> Vec<String> {
        let now = Instant::now();
        let ordered: Vec<String> = self.ring.successors(key).map(str::to_string).collect();
        let (live, cooling): (Vec<String>, Vec<String>) = ordered
            .into_iter()
            .partition(|addr| self.cooling.get(addr).is_none_or(|&until| until <= now));
        live.into_iter().chain(cooling).collect()
    }

    fn mark_down(&mut self, addr: &str) {
        self.conns.remove(addr);
        self.cooling.insert(
            addr.to_string(),
            Instant::now() + Duration::from_millis(self.config.cooldown_ms),
        );
    }

    fn mark_up(&mut self, addr: &str) {
        self.cooling.remove(addr);
    }

    /// Issues `op` against `key`'s candidates until one serves it:
    /// failover on transport loss and draining shards, same-shard
    /// jittered retry on Busy, immediate error on anything a retry
    /// cannot fix.
    fn call_on<T>(
        &mut self,
        key: &str,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClusterError> {
        if self.ring.is_empty() {
            return Err(ClusterError::NoShards);
        }
        let home = self
            .ring
            .shard_for(key)
            .expect("non-empty ring")
            .to_string();
        let mut attempts = 0u32;
        let mut last: Option<String> = None;
        for pass in 0..=self.config.retries {
            if pass > 0 {
                self.backoff(pass - 1);
            }
            for addr in self.candidates(key) {
                let mut busy_budget = 2u32;
                loop {
                    attempts += 1;
                    let outcome = match self.conn(&addr) {
                        Ok(client) => op(client),
                        Err(e) => Err(e),
                    };
                    match outcome {
                        Ok(value) => {
                            self.mark_up(&addr);
                            if addr != home {
                                self.reroutes += 1;
                            }
                            self.last_shard = Some(addr);
                            return Ok(value);
                        }
                        Err(ClientError::Server(e)) if e.code == ErrorCode::Busy => {
                            last = Some(format!("{addr}: {e}"));
                            if busy_budget == 0 {
                                break; // next candidate carries the key
                            }
                            busy_budget -= 1;
                            self.backoff(0);
                        }
                        Err(ClientError::Server(e)) if e.code == ErrorCode::ShuttingDown => {
                            last = Some(format!("{addr}: {e}"));
                            self.mark_down(&addr);
                            break;
                        }
                        Err(ClientError::Server(e)) => return Err(ClusterError::Server(e)),
                        Err(e) => {
                            // Transport loss or an unreadable reply: the
                            // shard is gone or wedged — drop the
                            // connection and fail over.
                            last = Some(format!("{addr}: {e}"));
                            self.mark_down(&addr);
                            break;
                        }
                    }
                }
            }
        }
        Err(ClusterError::Exhausted {
            key: key.to_string(),
            attempts,
            last,
        })
    }

    /// Runs (or fetches from the cluster's caches) one simulation.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Exhausted`] when no shard could serve it, or the
    /// first non-retryable server error.
    pub fn explore(&mut self, spec: &ExploreSpec) -> Result<ExploreResult, ClusterError> {
        let key = spec.canonical();
        let trace = self.trace;
        self.call_on(&key, |client| {
            client.set_trace(trace);
            client.explore(spec.clone())
        })
    }

    /// Runs a batch, splitting it by home shard and reassembling the
    /// results in request order. Hits/misses are summed across the
    /// per-shard sub-batches (a peer-filled item counts as a hit on the
    /// shard that served it).
    ///
    /// # Errors
    ///
    /// The first sub-batch failure, as [`ClusterError`].
    pub fn batch(
        &mut self,
        specs: &[ExploreSpec],
    ) -> Result<(Vec<ExploreResult>, u64, u64), ClusterError> {
        if self.ring.is_empty() {
            return Err(ClusterError::NoShards);
        }
        // Group request indices by home shard, preserving request order
        // inside each group; groups are issued in first-appearance
        // order so the split is deterministic.
        let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
        for (index, spec) in specs.iter().enumerate() {
            let home = self
                .ring
                .shard_for(&spec.canonical())
                .expect("non-empty ring")
                .to_string();
            match groups.iter_mut().find(|(addr, _)| *addr == home) {
                Some((_, indices)) => indices.push(index),
                None => groups.push((home, vec![index])),
            }
        }
        let mut results: Vec<Option<ExploreResult>> = vec![None; specs.len()];
        let (mut hits, mut misses) = (0u64, 0u64);
        for (_, indices) in groups {
            let sub: Vec<ExploreSpec> = indices.iter().map(|&i| specs[i].clone()).collect();
            // Route the whole group by its first member's key: every
            // member shares the same home shard by construction, and on
            // failover the serving shard can execute (or peer-fill) any
            // spec regardless.
            let key = sub[0].canonical();
            let trace = self.trace;
            let (sub_results, sub_hits, sub_misses) = self.call_on(&key, |client| {
                client.set_trace(trace);
                client.batch(sub.clone())
            })?;
            if sub_results.len() != indices.len() {
                return Err(ClusterError::Server(WireError::new(
                    ErrorCode::Internal,
                    format!(
                        "shard answered {} results for {} items",
                        sub_results.len(),
                        indices.len()
                    ),
                )));
            }
            hits += sub_hits;
            misses += sub_misses;
            for (index, result) in indices.into_iter().zip(sub_results) {
                results[index] = Some(result);
            }
        }
        Ok((
            results.into_iter().map(|r| r.expect("filled")).collect(),
            hits,
            misses,
        ))
    }

    /// One health probe per shard: `(addr, status)` with `None` for
    /// shards that did not answer a Status request.
    pub fn health(&mut self) -> Vec<(String, Option<StatusPayload>)> {
        let addrs: Vec<String> = self.ring.shards().to_vec();
        addrs
            .into_iter()
            .map(|addr| {
                let status = match self.conn(&addr) {
                    Ok(client) => client.status().ok(),
                    Err(_) => None,
                };
                if status.is_none() {
                    self.mark_down(&addr);
                } else {
                    self.mark_up(&addr);
                }
                (addr, status)
            })
            .collect()
    }

    /// Forwards one already-decoded request to `key`'s candidates (the
    /// proxy's passthrough path), propagating the caller's trace id.
    /// Structured error responses are returned as `Ok` — the proxy
    /// relays them verbatim.
    ///
    /// # Errors
    ///
    /// [`ClusterError`] when no shard answered at all.
    pub fn forward(
        &mut self,
        key: &str,
        request: &bfdn_service::protocol::Request,
        trace: Option<u64>,
    ) -> Result<Response, ClusterError> {
        self.call_on(key, |client| {
            client.set_trace(trace);
            client.request(request)
        })
    }
}
