//! `bfdn-fleet` — standalone federated metrics collector for a shard
//! fleet.
//!
//! ```text
//! bfdn-fleet --shards HOST:PORT,HOST:PORT,... [--addr HOST:PORT]
//!            [--interval-ms MS] [--timeout-ms MS]
//! ```
//!
//! Scrapes every shard's metrics over the wire protocol on the given
//! interval and serves the aggregated exposition on
//! `http://ADDR/metrics` (per-shard `{shard="host:port"}` series plus
//! cluster rollups and `bfdn_shard_up` liveness) and stitched
//! cross-shard traces on `http://ADDR/trace/<16-hex-trace-id>` as
//! Chrome trace-event JSON.
//!
//! For proxyful deployments prefer `bfdn-cluster-proxy --fleet-metrics
//! ADDR`, which runs this same collector in-process and folds the
//! proxy's own spans into stitched traces. Runs until killed.

use bfdn_cluster::fleet::{spawn, FleetConfig};
use std::process::ExitCode;

fn parse(args: impl IntoIterator<Item = String>) -> Result<FleetConfig, String> {
    let mut config = FleetConfig::new("127.0.0.1:9309", Vec::new());
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--shards" => {
                config.shards = value("--shards")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--interval-ms" => {
                let v = value("--interval-ms")?;
                config.interval_ms = v.parse().map_err(|_| format!("bad --interval-ms `{v}`"))?;
            }
            "--timeout-ms" => {
                let v = value("--timeout-ms")?;
                config.timeout_ms = v.parse().map_err(|_| format!("bad --timeout-ms `{v}`"))?;
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (try --addr --shards --interval-ms --timeout-ms)"
                ))
            }
        }
    }
    if config.shards.is_empty() {
        return Err("--shards is required (comma-separated wire addresses)".into());
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("bfdn-fleet: {e}");
            return ExitCode::from(2);
        }
    };
    let shards = config.shards.len();
    let handle = match spawn(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("bfdn-fleet: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "bfdn-fleet: aggregating {shards} shard(s) on http://{}/metrics (traces at /trace/<id>)",
        handle.addr()
    );
    // Serve until killed; the handle's threads do all the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
