//! `bfdn-cluster-proxy` — a single wire endpoint fronting a shard
//! cluster.
//!
//! ```text
//! bfdn-cluster-proxy --shards HOST:PORT,HOST:PORT,...
//!                    [--addr HOST:PORT] [--connect-timeout-ms MS]
//!                    [--read-timeout-ms MS] [--retries N]
//!                    [--backoff-ms MS] [--jitter-seed SEED]
//!                    [--cooldown-ms MS]
//!                    [--fleet-metrics HOST:PORT] [--fleet-interval-ms MS]
//! ```
//!
//! Clients that only speak the plain single-daemon protocol (sweeps,
//! scripts, `bfdn-request` without `--cluster`) connect here instead of
//! to a shard; the proxy routes every explore/batch by its canonical
//! spec key over the consistent-hash ring and fails over around dead
//! shards. Each inbound connection gets its own [`ClusterClient`] with
//! a jitter seed derived from the connection index, so retry schedules
//! stay reproducible yet distinct across connections.
//!
//! Request handling:
//!
//! - `explore` / `batch` / `peer_fill` — ring-routed with failover;
//!   batches are split by home shard and reassembled in request order.
//!   When the request carries a trace envelope the proxy records its
//!   own `request` → `proxy_forward` spans (with `target` naming the
//!   shard that served), so stitched timelines show the proxy hop.
//! - `trace` *with* a trace envelope — answered by the proxy itself: it
//!   pulls the trace's spans from every shard's ring, folds in its own
//!   `proxy_forward` spans, and replies with one stitched cross-process
//!   tree ([`bfdn_service::stitch`]).
//! - `status` / `cache_stats` / `trace` without an envelope — answered
//!   by the first healthy shard (a fixed routing key, so the same shard
//!   answers these while it lives).
//! - `metrics` — answered by the *proxy's own* registry (notably
//!   `bfdn_cluster_reroutes_total`); scrape shards directly for
//!   per-shard counters, or run `--fleet-metrics ADDR` for the
//!   federated view (per-shard labels + cluster rollups on one HTTP
//!   endpoint, stitched traces at `/trace/<id>`).
//! - `shutdown` — acknowledged with `bye`, then the proxy process
//!   exits. The shards are deliberately left running: stopping them is
//!   their operator's call, not a client's.

use bfdn_cluster::{fleet, ClusterClient, ClusterConfig, ClusterError};
use bfdn_obs::metrics::{register_build_info, Counter, Registry};
use bfdn_obs::tracing::{SpanRecord, SpanRecorder, Tracer};
use bfdn_service::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, SpanPayload, TracePayload,
    WireError,
};
use bfdn_service::stitch::ProcessSpans;
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Invocation {
    addr: String,
    config: ClusterConfig,
    fleet_metrics: Option<String>,
    fleet_interval_ms: u64,
}

fn parse(args: impl IntoIterator<Item = String>) -> Result<Invocation, String> {
    let mut addr = "127.0.0.1:4190".to_string();
    let mut config = ClusterConfig::new(Vec::<String>::new());
    let mut fleet_metrics = None;
    let mut fleet_interval_ms = 1_000;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--shards" => {
                config.shards = value("--shards")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--connect-timeout-ms" => {
                let v = value("--connect-timeout-ms")?;
                config.connect_timeout_ms = v
                    .parse()
                    .map_err(|_| format!("bad --connect-timeout-ms `{v}`"))?;
            }
            "--read-timeout-ms" => {
                let v = value("--read-timeout-ms")?;
                config.read_timeout_ms = v
                    .parse()
                    .map_err(|_| format!("bad --read-timeout-ms `{v}`"))?;
            }
            "--retries" => {
                let v = value("--retries")?;
                config.retries = v.parse().map_err(|_| format!("bad --retries `{v}`"))?;
            }
            "--backoff-ms" => {
                let v = value("--backoff-ms")?;
                config.backoff_ms = v.parse().map_err(|_| format!("bad --backoff-ms `{v}`"))?;
            }
            "--jitter-seed" => {
                let v = value("--jitter-seed")?;
                config.jitter_seed = v.parse().map_err(|_| format!("bad --jitter-seed `{v}`"))?;
            }
            "--cooldown-ms" => {
                let v = value("--cooldown-ms")?;
                config.cooldown_ms = v.parse().map_err(|_| format!("bad --cooldown-ms `{v}`"))?;
            }
            "--fleet-metrics" => fleet_metrics = Some(value("--fleet-metrics")?),
            "--fleet-interval-ms" => {
                let v = value("--fleet-interval-ms")?;
                fleet_interval_ms = v
                    .parse()
                    .map_err(|_| format!("bad --fleet-interval-ms `{v}`"))?;
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (try --addr --shards --connect-timeout-ms \
                     --read-timeout-ms --retries --backoff-ms --jitter-seed --cooldown-ms \
                     --fleet-metrics --fleet-interval-ms)"
                ))
            }
        }
    }
    if config.shards.is_empty() {
        return Err("--shards is required (comma-separated HOST:PORT list)".to_string());
    }
    Ok(Invocation {
        addr,
        config,
        fleet_metrics,
        fleet_interval_ms,
    })
}

/// Aggregate counters shared by every connection thread.
struct ProxyMetrics {
    registry: Registry,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    reroutes: Arc<Counter>,
}

impl ProxyMetrics {
    fn new(shards: usize) -> Self {
        let registry = Registry::new();
        register_build_info(&registry, env!("CARGO_PKG_VERSION"));
        let requests = registry.counter(
            "bfdn_cluster_requests_total",
            "Requests accepted by the cluster proxy.",
            &[],
        );
        let errors = registry.counter(
            "bfdn_cluster_errors_total",
            "Proxy requests that no shard could serve.",
            &[],
        );
        let reroutes = registry.counter(
            "bfdn_cluster_reroutes_total",
            "Operations served by a shard other than their key's home.",
            &[],
        );
        registry
            .gauge("bfdn_cluster_shards", "Shards the proxy routes over.", &[])
            .set(shards as f64);
        ProxyMetrics {
            registry,
            requests,
            errors,
            reroutes,
        }
    }
}

/// State shared by every connection thread: counters, the proxy's own
/// span ring (for the `proxy_forward` hop in stitched traces), and what
/// the stitched `trace` verb needs to pull shard rings.
struct ProxyState {
    metrics: ProxyMetrics,
    tracer: Tracer,
    shards: Vec<String>,
    trace_timeout: Duration,
}

impl ProxyState {
    fn new(config: &ClusterConfig) -> Self {
        ProxyState {
            metrics: ProxyMetrics::new(config.shards.len()),
            tracer: Tracer::new(SpanRecorder::DEFAULT_CAPACITY),
            shards: config.shards.clone(),
            trace_timeout: Duration::from_millis(config.read_timeout_ms.max(1)),
        }
    }

    /// The proxy's own spans for `trace`, as a stitchable process
    /// contribution labeled `proxy`.
    fn process_spans(&self, trace: u64) -> ProcessSpans {
        let recorder = self.tracer.recorder();
        let spans = recorder
            .snapshot()
            .iter()
            .filter(|s| s.trace == trace)
            .map(SpanPayload::from)
            .collect();
        ProcessSpans::from_payload(
            "proxy",
            TracePayload {
                spans,
                recorded: recorder.recorded(),
                dropped: recorder.dropped(),
            },
        )
    }

    /// Records the `request` → `proxy_forward` span pair for one traced
    /// forward; `target` names the shard that served, which is the
    /// bridge attribute the stitcher re-parents that shard's tree
    /// under.
    fn record_forward(&self, trace: u64, kind: &'static str, target: Option<&str>, start_ns: u64) {
        let duration = self.tracer.now_ns().saturating_sub(start_ns);
        let root = self.tracer.next_id();
        let forward = self.tracer.next_id();
        let mut span =
            SpanRecord::new(trace, forward, root, "proxy_forward").at(start_ns, duration);
        if let Some(target) = target {
            span = span.attr_str("target", target.to_string());
        }
        self.tracer.record(span);
        self.tracer.record(
            SpanRecord::new(trace, root, 0, "request")
                .at(start_ns, duration)
                .attr_str("kind", kind),
        );
    }
}

fn cluster_error_response(e: ClusterError) -> Response {
    match e {
        ClusterError::Server(err) => Response::Error(err),
        // Retryable from the caller's point of view: the cluster may
        // heal (shard restart) before the next attempt.
        other => Response::Error(WireError::new(ErrorCode::Busy, other.to_string())),
    }
}

/// Serves one inbound connection until EOF or a shutdown request.
/// Returns `true` when the proxy should exit.
fn handle_connection(
    mut stream: TcpStream,
    mut cluster: ClusterClient,
    state: &ProxyState,
) -> bool {
    let _ = stream.set_nodelay(true);
    let metrics = &state.metrics;
    let mut seen_reroutes = 0u64;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(e) if e.is_eof() => return false,
            Err(FrameError::Io(_)) => return false,
            Err(e) => {
                let reply = Response::Error(WireError::bad_request(e.to_string()));
                let _ = write_frame(&mut stream, &reply.to_json());
                return false;
            }
        };
        metrics.requests.inc();
        let (request, trace) = match Request::from_json_traced(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                let _ = write_frame(&mut stream, &Response::Error(e).to_json_traced(None));
                continue;
            }
        };
        let start_ns = state.tracer.now_ns();
        let (reply, done) = match &request {
            Request::Explore(spec) | Request::PeerFill(spec) => {
                let key = spec.canonical();
                let reply = cluster.forward(&key, &request, trace);
                if let Some(id) = trace {
                    let kind = match request {
                        Request::PeerFill(_) => "peer_fill",
                        _ => "explore",
                    };
                    state.record_forward(id, kind, cluster.last_shard(), start_ns);
                }
                (reply, false)
            }
            Request::Batch(specs) => {
                let reply = cluster
                    .batch(specs)
                    .map(|(results, hits, misses)| Response::Batch {
                        results,
                        hits,
                        misses,
                    });
                // A batch fans out over many shards, so the forward
                // span names no single `target`; it still shows the
                // proxy hop's wall-clock on the timeline.
                if let Some(id) = trace {
                    state.record_forward(id, "batch", None, start_ns);
                }
                (reply, false)
            }
            // A trace pull with an envelope is the cluster-wide
            // question "show me this request" — answered here by
            // stitching every shard's ring with the proxy's own spans.
            Request::Trace if trace.is_some() => {
                let id = trace.expect("guarded");
                let local = state.process_spans(id);
                let stitched =
                    fleet::fleet_trace(&state.shards, id, state.trace_timeout, Some(local));
                (Ok(Response::Trace(stitched)), false)
            }
            // One stable pseudo-key: the same shard answers these while
            // it lives, with failover if it dies.
            Request::Status | Request::CacheStats | Request::Trace => {
                (cluster.forward("cluster-control", &request, trace), false)
            }
            Request::Metrics => (Ok(Response::Metrics(metrics.registry.render())), false),
            Request::Shutdown => (Ok(Response::Bye), true),
        };
        let reply = match reply {
            Ok(r) => r,
            Err(e) => {
                metrics.errors.inc();
                cluster_error_response(e)
            }
        };
        let total = cluster.reroutes();
        metrics.reroutes.add(total - seen_reroutes);
        seen_reroutes = total;
        if write_frame(&mut stream, &reply.to_json_traced(trace)).is_err() {
            return false;
        }
        if done {
            return true;
        }
    }
}

fn main() -> ExitCode {
    let invocation = match parse(std::env::args().skip(1)) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("bfdn-cluster-proxy: {e}");
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind(&invocation.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bfdn-cluster-proxy: cannot bind {}: {e}", invocation.addr);
            return ExitCode::FAILURE;
        }
    };
    let local = listener.local_addr().expect("bound listener");
    eprintln!(
        "bfdn-cluster-proxy: listening on {local}, routing over {} shards",
        invocation.config.shards.len()
    );
    // The fleet collector outlives every connection; its handle is held
    // for the process lifetime (the proxy only exits via shutdown).
    let _fleet = match &invocation.fleet_metrics {
        Some(fleet_addr) => {
            let mut fleet_config =
                fleet::FleetConfig::new(fleet_addr.clone(), invocation.config.shards.clone());
            fleet_config.interval_ms = invocation.fleet_interval_ms;
            match fleet::spawn(fleet_config) {
                Ok(handle) => {
                    eprintln!(
                        "bfdn-cluster-proxy: fleet metrics on http://{}/metrics \
                         (stitched traces at /trace/<id>)",
                        handle.addr()
                    );
                    Some(handle)
                }
                Err(e) => {
                    eprintln!("bfdn-cluster-proxy: cannot start fleet collector: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let state = Arc::new(ProxyState::new(&invocation.config));
    let base_seed = invocation.config.jitter_seed;
    let mut connection_index = 0u64;
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        connection_index += 1;
        let mut config = invocation.config.clone();
        // Distinct but reproducible retry schedules per connection.
        config.jitter_seed = base_seed.wrapping_add(connection_index);
        let cluster = ClusterClient::new(config);
        let state = Arc::clone(&state);
        // Thread-per-connection; a shutdown request ends the whole
        // process (the `bye` reply is already flushed by then), which
        // closes every other connection's socket with it.
        std::thread::spawn(move || {
            if handle_connection(stream, cluster, &state) {
                eprintln!("bfdn-cluster-proxy: shutdown requested, bye");
                std::process::exit(0);
            }
        });
    }
    ExitCode::SUCCESS
}
