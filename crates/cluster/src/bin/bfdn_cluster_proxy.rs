//! `bfdn-cluster-proxy` — a single wire endpoint fronting a shard
//! cluster.
//!
//! ```text
//! bfdn-cluster-proxy --shards HOST:PORT,HOST:PORT,...
//!                    [--addr HOST:PORT] [--connect-timeout-ms MS]
//!                    [--read-timeout-ms MS] [--retries N]
//!                    [--backoff-ms MS] [--jitter-seed SEED]
//!                    [--cooldown-ms MS]
//! ```
//!
//! Clients that only speak the plain single-daemon protocol (sweeps,
//! scripts, `bfdn-request` without `--cluster`) connect here instead of
//! to a shard; the proxy routes every explore/batch by its canonical
//! spec key over the consistent-hash ring and fails over around dead
//! shards. Each inbound connection gets its own [`ClusterClient`] with
//! a jitter seed derived from the connection index, so retry schedules
//! stay reproducible yet distinct across connections.
//!
//! Request handling:
//!
//! - `explore` / `batch` / `peer_fill` — ring-routed with failover;
//!   batches are split by home shard and reassembled in request order.
//! - `status` / `cache_stats` / `trace` — answered by the first healthy
//!   shard (a fixed routing key, so the same shard answers while it
//!   lives).
//! - `metrics` — answered by the *proxy's own* registry (notably
//!   `bfdn_cluster_reroutes_total`); scrape shards directly for
//!   per-shard counters.
//! - `shutdown` — acknowledged with `bye`, then the proxy process
//!   exits. The shards are deliberately left running: stopping them is
//!   their operator's call, not a client's.

use bfdn_cluster::{ClusterClient, ClusterConfig, ClusterError};
use bfdn_obs::metrics::{Counter, Registry};
use bfdn_service::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, WireError,
};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;

struct Invocation {
    addr: String,
    config: ClusterConfig,
}

fn parse(args: impl IntoIterator<Item = String>) -> Result<Invocation, String> {
    let mut addr = "127.0.0.1:4190".to_string();
    let mut config = ClusterConfig::new(Vec::<String>::new());
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--shards" => {
                config.shards = value("--shards")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--connect-timeout-ms" => {
                let v = value("--connect-timeout-ms")?;
                config.connect_timeout_ms = v
                    .parse()
                    .map_err(|_| format!("bad --connect-timeout-ms `{v}`"))?;
            }
            "--read-timeout-ms" => {
                let v = value("--read-timeout-ms")?;
                config.read_timeout_ms = v
                    .parse()
                    .map_err(|_| format!("bad --read-timeout-ms `{v}`"))?;
            }
            "--retries" => {
                let v = value("--retries")?;
                config.retries = v.parse().map_err(|_| format!("bad --retries `{v}`"))?;
            }
            "--backoff-ms" => {
                let v = value("--backoff-ms")?;
                config.backoff_ms = v.parse().map_err(|_| format!("bad --backoff-ms `{v}`"))?;
            }
            "--jitter-seed" => {
                let v = value("--jitter-seed")?;
                config.jitter_seed = v.parse().map_err(|_| format!("bad --jitter-seed `{v}`"))?;
            }
            "--cooldown-ms" => {
                let v = value("--cooldown-ms")?;
                config.cooldown_ms = v.parse().map_err(|_| format!("bad --cooldown-ms `{v}`"))?;
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (try --addr --shards --connect-timeout-ms \
                     --read-timeout-ms --retries --backoff-ms --jitter-seed --cooldown-ms)"
                ))
            }
        }
    }
    if config.shards.is_empty() {
        return Err("--shards is required (comma-separated HOST:PORT list)".to_string());
    }
    Ok(Invocation { addr, config })
}

/// Aggregate counters shared by every connection thread.
struct ProxyMetrics {
    registry: Registry,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    reroutes: Arc<Counter>,
}

impl ProxyMetrics {
    fn new(shards: usize) -> Self {
        let registry = Registry::new();
        let requests = registry.counter(
            "bfdn_cluster_requests_total",
            "Requests accepted by the cluster proxy.",
            &[],
        );
        let errors = registry.counter(
            "bfdn_cluster_errors_total",
            "Proxy requests that no shard could serve.",
            &[],
        );
        let reroutes = registry.counter(
            "bfdn_cluster_reroutes_total",
            "Operations served by a shard other than their key's home.",
            &[],
        );
        registry
            .gauge("bfdn_cluster_shards", "Shards the proxy routes over.", &[])
            .set(shards as f64);
        ProxyMetrics {
            registry,
            requests,
            errors,
            reroutes,
        }
    }
}

fn cluster_error_response(e: ClusterError) -> Response {
    match e {
        ClusterError::Server(err) => Response::Error(err),
        // Retryable from the caller's point of view: the cluster may
        // heal (shard restart) before the next attempt.
        other => Response::Error(WireError::new(ErrorCode::Busy, other.to_string())),
    }
}

/// Serves one inbound connection until EOF or a shutdown request.
/// Returns `true` when the proxy should exit.
fn handle_connection(
    mut stream: TcpStream,
    mut cluster: ClusterClient,
    metrics: &ProxyMetrics,
) -> bool {
    let _ = stream.set_nodelay(true);
    let mut seen_reroutes = 0u64;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(e) if e.is_eof() => return false,
            Err(FrameError::Io(_)) => return false,
            Err(e) => {
                let reply = Response::Error(WireError::bad_request(e.to_string()));
                let _ = write_frame(&mut stream, &reply.to_json());
                return false;
            }
        };
        metrics.requests.inc();
        let (request, trace) = match Request::from_json_traced(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                let _ = write_frame(&mut stream, &Response::Error(e).to_json_traced(None));
                continue;
            }
        };
        let (reply, done) = match &request {
            Request::Explore(spec) | Request::PeerFill(spec) => {
                let key = spec.canonical();
                (cluster.forward(&key, &request, trace), false)
            }
            Request::Batch(specs) => (
                cluster
                    .batch(specs)
                    .map(|(results, hits, misses)| Response::Batch {
                        results,
                        hits,
                        misses,
                    }),
                false,
            ),
            // One stable pseudo-key: the same shard answers these while
            // it lives, with failover if it dies.
            Request::Status | Request::CacheStats | Request::Trace => {
                (cluster.forward("cluster-control", &request, trace), false)
            }
            Request::Metrics => (Ok(Response::Metrics(metrics.registry.render())), false),
            Request::Shutdown => (Ok(Response::Bye), true),
        };
        let reply = match reply {
            Ok(r) => r,
            Err(e) => {
                metrics.errors.inc();
                cluster_error_response(e)
            }
        };
        let total = cluster.reroutes();
        metrics.reroutes.add(total - seen_reroutes);
        seen_reroutes = total;
        if write_frame(&mut stream, &reply.to_json_traced(trace)).is_err() {
            return false;
        }
        if done {
            return true;
        }
    }
}

fn main() -> ExitCode {
    let invocation = match parse(std::env::args().skip(1)) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("bfdn-cluster-proxy: {e}");
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind(&invocation.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bfdn-cluster-proxy: cannot bind {}: {e}", invocation.addr);
            return ExitCode::FAILURE;
        }
    };
    let local = listener.local_addr().expect("bound listener");
    eprintln!(
        "bfdn-cluster-proxy: listening on {local}, routing over {} shards",
        invocation.config.shards.len()
    );
    let metrics = Arc::new(ProxyMetrics::new(invocation.config.shards.len()));
    let base_seed = invocation.config.jitter_seed;
    let mut connection_index = 0u64;
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        connection_index += 1;
        let mut config = invocation.config.clone();
        // Distinct but reproducible retry schedules per connection.
        config.jitter_seed = base_seed.wrapping_add(connection_index);
        let cluster = ClusterClient::new(config);
        let metrics = Arc::clone(&metrics);
        // Thread-per-connection; a shutdown request ends the whole
        // process (the `bye` reply is already flushed by then), which
        // closes every other connection's socket with it.
        std::thread::spawn(move || {
            if handle_connection(stream, cluster, &metrics) {
                eprintln!("bfdn-cluster-proxy: shutdown requested, bye");
                std::process::exit(0);
            }
        });
    }
    ExitCode::SUCCESS
}
