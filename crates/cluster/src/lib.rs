//! Sharded multi-daemon serving for the BFDN reproduction.
//!
//! A cluster is N independent `bfdn-serve` daemons plus routing on two
//! sides of the wire:
//!
//! - **Client side** ([`ClusterClient`], and the `bfdn-cluster-proxy`
//!   binary wrapping it): a consistent-hash ring ([`HashRing`]) sends
//!   each canonical spec key to its home shard, with health-checked
//!   failover along the ring's successor order when shards die. The
//!   ring's minimal-remap property keeps a breakdown local: only the
//!   dead shard's keys move.
//! - **Server side** (peer cache-fill, in `bfdn-service`): a shard that
//!   misses its local cache asks its peers for their cached copy before
//!   executing, so a spec is computed at most once cluster-wide in
//!   steady state, and a re-routed key is usually *copied* to its new
//!   shard rather than recomputed.
//! - **Observability side** ([`fleet`], and the `bfdn-fleet` binary):
//!   a federated collector scrapes every shard's metrics over the wire
//!   protocol, re-exposes one aggregated endpoint with per-shard labels
//!   and cluster rollups, and stitches cross-shard traces into a single
//!   Perfetto-loadable timeline.
//!
//! This is the systems analogue of the paper's Proposition 7: `BFDN`
//! tolerates agent break-downs with bounded extra cost, and the cluster
//! tolerates shard break-downs with bounded extra work (re-fill over
//! the wire instead of re-execution). Everything here rides the
//! existing length-prefixed JSON wire protocol — no new formats, no new
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fleet;
pub mod ring;

pub use client::{ClusterClient, ClusterConfig, ClusterError};
pub use fleet::{FleetConfig, FleetHandle};
pub use ring::HashRing;
