//! The fleet-level observability plane: a federated metrics collector
//! and a cross-shard trace puller.
//!
//! A cluster is N `bfdn-serve` daemons, each with its own `/metrics`
//! registry and span ring — operationally N disjoint stories. The
//! [`FleetCollector`] joins them: a scraper thread pulls every shard's
//! Prometheus exposition **over the wire protocol** (the `metrics`
//! request — no per-shard HTTP listener required) on a fixed interval
//! and folds it into a [`bfdn_obs::FleetAggregator`]; an HTTP thread
//! re-exposes the federation on one endpoint:
//!
//! - `GET /metrics` — every shard's series relabeled `{shard="addr"}`
//!   plus cluster rollups: summed counters, worst-over-fleet margin
//!   gauges, per-class p99 maxima, and `bfdn_shard_up` liveness with
//!   staleness marking (a SIGKILLed shard flips to `0` within one
//!   scrape interval instead of silently vanishing).
//! - `GET /trace/<16-hex-id>` — pulls the trace's spans from every
//!   shard's ring (the wire `trace` verb filters by the envelope id),
//!   stitches them into one cross-process tree via
//!   [`bfdn_service::stitch`], and answers with Perfetto-loadable
//!   Chrome trace-event JSON.
//!
//! The same helpers back `bfdn-cluster-proxy --fleet-metrics ADDR`
//! (proxyful deployments) and the standalone `bfdn-fleet` binary
//! (proxyless ones).

use bfdn_obs::tracing::parse_hex16;
use bfdn_obs::FleetAggregator;
use bfdn_service::client::Client;
use bfdn_service::protocol::TracePayload;
use bfdn_service::stitch::{stitch, to_chrome_json, ProcessSpans};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Fleet-collector configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// HTTP listen address for the aggregated endpoint (port 0 picks a
    /// free one).
    pub addr: String,
    /// Wire addresses of every shard to scrape.
    pub shards: Vec<String>,
    /// Scrape interval in milliseconds.
    pub interval_ms: u64,
    /// Connect *and* read budget per shard probe, in milliseconds — a
    /// SIGKILLed shard costs at most this much per scrape round.
    pub timeout_ms: u64,
}

impl FleetConfig {
    /// A collector on `addr` over `shards` with the default 1s interval
    /// and 500ms per-probe budget.
    pub fn new(addr: impl Into<String>, shards: Vec<String>) -> Self {
        FleetConfig {
            addr: addr.into(),
            shards,
            interval_ms: 1_000,
            timeout_ms: 500,
        }
    }
}

/// Scrapes one shard's Prometheus exposition over the wire protocol.
/// `None` means the shard is down (connect, request, or decode failed)
/// — the caller marks it stale rather than erasing its series.
pub fn scrape_shard(shard: &str, timeout: Duration) -> Option<String> {
    let addr = shard.to_socket_addrs().ok()?.next()?;
    let mut client = Client::connect_timeout(&addr, timeout).ok()?;
    client.set_read_timeout(Some(timeout)).ok()?;
    client.metrics().ok()
}

/// Pulls one trace's spans from a shard's ring. `None` means the shard
/// was unreachable; an empty payload means it simply holds no spans for
/// the id.
pub fn shard_trace(shard: &str, trace: u64, timeout: Duration) -> Option<TracePayload> {
    let addr = shard.to_socket_addrs().ok()?.next()?;
    let mut client = Client::connect_timeout(&addr, timeout).ok()?;
    client.set_read_timeout(Some(timeout)).ok()?;
    client.trace_spans(Some(trace)).ok()
}

/// Pulls `trace` from every shard and stitches the fragments — plus an
/// optional local contribution (the proxy's own `proxy_forward` spans)
/// — into one cross-process tree. Unreachable shards are skipped; each
/// reachable shard contributes under its wire address as the `shard`
/// label, which is exactly what the proxy's bridge spans name as their
/// `target`.
pub fn fleet_trace(
    shards: &[String],
    trace: u64,
    timeout: Duration,
    local: Option<ProcessSpans>,
) -> TracePayload {
    let mut processes: Vec<ProcessSpans> = local.into_iter().collect();
    for shard in shards {
        if let Some(payload) = shard_trace(shard, trace, timeout) {
            processes.push(ProcessSpans::from_payload(shard, payload));
        }
    }
    stitch(&processes)
}

/// A running fleet collector; [`FleetHandle::stop`] shuts both threads
/// down.
pub struct FleetHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl FleetHandle {
    /// The bound HTTP address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals both threads and waits for them to exit.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Starts the collector: a scraper thread (first round immediately,
/// then every `interval_ms`) and an HTTP thread serving `/metrics` and
/// `/trace/<id>`.
///
/// # Errors
///
/// Propagates the HTTP bind failure.
pub fn spawn(config: FleetConfig) -> io::Result<FleetHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let aggregator = Arc::new(Mutex::new(FleetAggregator::new(config.shards.clone())));
    let stop = Arc::new(AtomicBool::new(false));
    let timeout = Duration::from_millis(config.timeout_ms.max(1));
    let interval = Duration::from_millis(config.interval_ms.max(10));

    let scraper = {
        let aggregator = Arc::clone(&aggregator);
        let stop = Arc::clone(&stop);
        let shards = config.shards.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                for shard in &shards {
                    match scrape_shard(shard, timeout) {
                        Some(text) => aggregator.lock().expect("fleet").observe(shard, &text),
                        None => aggregator.lock().expect("fleet").mark_down(shard),
                    }
                }
                // Sleep in short slices so stop() returns promptly even
                // with long scrape intervals.
                let mut slept = Duration::ZERO;
                while slept < interval && !stop.load(Ordering::SeqCst) {
                    let slice = (interval - slept).min(Duration::from_millis(50));
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        })
    };

    let http = {
        let aggregator = Arc::clone(&aggregator);
        let stop = Arc::clone(&stop);
        let shards = config.shards.clone();
        std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => serve_http(stream, &aggregator, &shards, timeout),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => return,
            }
        })
    };

    Ok(FleetHandle {
        addr,
        stop,
        threads: vec![scraper, http],
    })
}

/// Answers one HTTP request: `/metrics` (aggregated exposition) or
/// `/trace/<16-hex-id>` (stitched Chrome trace-event JSON).
fn serve_http(
    mut stream: TcpStream,
    aggregator: &Mutex<FleetAggregator>,
    shards: &[String],
    timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 4096 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let target = request_line
        .lines()
        .next()
        .unwrap_or("")
        .split_whitespace()
        .nth(1)
        .unwrap_or("")
        .to_string();
    let (status, content_type, body) = route(&target, aggregator, shards, timeout);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

fn route(
    target: &str,
    aggregator: &Mutex<FleetAggregator>,
    shards: &[String],
    timeout: Duration,
) -> (&'static str, &'static str, String) {
    if target == "/metrics" || target.starts_with("/metrics?") {
        let mut body = aggregator.lock().expect("fleet").render();
        body.push_str(&fleet_build_info());
        return ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body);
    }
    if let Some(id) = target
        .strip_prefix("/trace/")
        .and_then(parse_hex16)
        .filter(|&id| id != 0)
    {
        let stitched = fleet_trace(shards, id, timeout, None);
        return (
            "200 OK",
            "application/json; charset=utf-8",
            to_chrome_json(&stitched),
        );
    }
    (
        "404 Not Found",
        "text/plain; charset=utf-8",
        "try /metrics or /trace/<16-hex-trace-id>\n".to_string(),
    )
}

/// The collector's own build identity, namespaced
/// `bfdn_fleet_build_info` so it cannot collide with the per-shard
/// `bfdn_build_info` series it re-exposes.
fn fleet_build_info() -> String {
    format!(
        "# HELP bfdn_fleet_build_info Build metadata of the fleet collector.\n\
         # TYPE bfdn_fleet_build_info gauge\n\
         bfdn_fleet_build_info{{revision=\"{}\",version=\"{}\"}} 1\n",
        bfdn_obs::git_revision().unwrap_or_else(|| "unknown".to_string()),
        env!("CARGO_PKG_VERSION")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfdn_service::protocol::ExploreSpec;
    use bfdn_service::server::{serve, ServerConfig};

    fn http_get(addr: SocketAddr, target: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect fleet http");
        write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read reply");
        body
    }

    #[test]
    fn collector_aggregates_two_live_shards_and_marks_the_dead_one_down() {
        let a = serve(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        })
        .expect("shard a");
        let b = serve(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        })
        .expect("shard b");
        let a_addr = a.addr().to_string();
        let b_addr = b.addr().to_string();

        // Distinct workloads so the summed rollup is distinguishable.
        let mut ca = Client::connect(a.addr()).expect("client a");
        ca.explore(ExploreSpec::new("bfdn", "comb", 80, 2, 1))
            .expect("run on a");
        let mut cb = Client::connect(b.addr()).expect("client b");
        cb.explore(ExploreSpec::new("bfdn", "comb", 80, 2, 2))
            .expect("run on b");
        cb.explore(ExploreSpec::new("bfdn", "comb", 80, 2, 3))
            .expect("run on b");

        // Third shard address nobody listens on: down from scrape one.
        let dead = "127.0.0.1:1".to_string();
        let handle = spawn(FleetConfig {
            addr: "127.0.0.1:0".into(),
            shards: vec![a_addr.clone(), b_addr.clone(), dead.clone()],
            interval_ms: 50,
            timeout_ms: 200,
        })
        .expect("fleet collector");

        // One full scrape round is guaranteed after ~interval + probes.
        std::thread::sleep(Duration::from_millis(600));
        let body = http_get(handle.addr(), "/metrics");

        assert!(body.contains("bfdn_fleet_shards 3"));
        assert!(body.contains("bfdn_fleet_shards_up 2"));
        assert!(body.contains(&format!("bfdn_shard_up{{shard=\"{a_addr}\"}} 1")));
        assert!(body.contains(&format!("bfdn_shard_up{{shard=\"{dead}\"}} 0")));
        // Per-shard relabeled series plus the exact-sum rollup.
        assert!(body.contains(&format!(
            "bfdn_requests_total{{shard=\"{a_addr}\",type=\"explore\"}} 1"
        )));
        assert!(body.contains(&format!(
            "bfdn_requests_total{{shard=\"{b_addr}\",type=\"explore\"}} 2"
        )));
        assert!(body.contains("bfdn_requests_total{type=\"explore\"} 3"));
        // Margin rollup: worst over the fleet, finite once runs exist.
        assert!(body.contains("bfdn_bound_margin_worst{bound=\"theorem1_rounds\"}"));

        let missing = http_get(handle.addr(), "/nope");
        assert!(missing.contains("404"));

        handle.stop();
        ca.shutdown().expect("bye a");
        a.join().expect("drain a");
        cb.shutdown().expect("bye b");
        b.join().expect("drain b");
    }

    #[test]
    fn fleet_trace_stitches_rings_pulled_from_live_shards() {
        let peer = serve(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        })
        .expect("peer shard");
        let peer_addr = peer.addr().to_string();
        let home = serve(ServerConfig {
            addr: "127.0.0.1:0".into(),
            peers: vec![peer_addr.clone()],
            ..ServerConfig::default()
        })
        .expect("home shard");
        let home_addr = home.addr().to_string();

        let spec = ExploreSpec::new("bfdn", "comb", 90, 3, 5);
        let mut warm = Client::connect(peer.addr()).expect("warm client");
        warm.explore(spec.clone()).expect("warm the peer");

        let trace = 0x0ddba11c0ffee000u64 | 1;
        let mut client = Client::connect(home.addr()).expect("traced client");
        client.set_trace(Some(trace));
        assert!(client.explore(spec).expect("peer-filled").cached);

        let shards = vec![home_addr.clone(), peer_addr.clone()];
        let stitched = fleet_trace(&shards, trace, Duration::from_millis(500), None);
        assert_eq!(stitched.dropped, 0);
        assert_eq!(
            stitched.spans.iter().filter(|s| s.parent == 0).count(),
            1,
            "one tree across both processes"
        );
        let processes: std::collections::BTreeSet<_> = stitched
            .spans
            .iter()
            .filter_map(|s| s.attrs.iter().find(|(k, _)| k == "shard"))
            .map(|(_, v)| v.clone())
            .collect();
        assert!(processes.contains(&home_addr));
        assert!(processes.contains(&peer_addr));
        // And the export is Perfetto-shaped: both pids present.
        let chrome = to_chrome_json(&stitched);
        assert!(chrome.contains("\"pid\":1"));
        assert!(chrome.contains("\"pid\":2"));

        client.shutdown().expect("bye home");
        home.join().expect("drain home");
        warm.shutdown().expect("bye peer");
        peer.join().expect("drain peer");
    }
}
