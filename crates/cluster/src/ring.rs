//! The consistent-hash ring routing canonical spec keys to shards.
//!
//! Each shard contributes [`HashRing::DEFAULT_REPLICAS`] virtual
//! points; a key is owned by the first point at or after its own
//! position (wrapping), and its failover order is the distinct shards
//! met walking onward. Virtual points give two properties the cluster
//! leans on:
//!
//! - **Near-uniform load.** With hundreds of points per shard, each
//!   shard's share of key space concentrates around `1/N` (the unit
//!   test holds every shard within 15% of uniform at 3–8 shards).
//! - **Minimal remap.** Removing a shard deletes only its points; every
//!   key it did not own keeps its owner. A failing-over client
//!   therefore re-routes only the dead shard's keys, and peer
//!   cache-fill makes even those cheap to re-serve.
//!
//! Hashing is the workspace FNV-1a (the same hash the result cache
//! shards on) finished with a SplitMix64-style avalanche, because raw
//! FNV of short similar strings leaves upper bits too regular for
//! well-spread ring positions.

use bfdn_service::protocol::fnv1a;

/// SplitMix64 finalizer: avalanches every input bit over the output.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over shard addresses.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(position, shard index)` sorted by position (ties by index, so
    /// two rings over the same shards are always identical).
    points: Vec<(u64, usize)>,
    shards: Vec<String>,
}

impl HashRing {
    /// Virtual points per shard. Relative load imbalance shrinks like
    /// `1/sqrt(replicas)`; 512 keeps every shard within a few percent
    /// of uniform while the whole ring stays a few KiB.
    pub const DEFAULT_REPLICAS: usize = 512;

    /// Builds a ring with [`HashRing::DEFAULT_REPLICAS`] points per
    /// shard.
    pub fn new<I, S>(shards: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::with_replicas(shards, Self::DEFAULT_REPLICAS)
    }

    /// Builds a ring with `replicas` virtual points per shard.
    pub fn with_replicas<I, S>(shards: I, replicas: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let shards: Vec<String> = shards.into_iter().map(Into::into).collect();
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(shards.len() * replicas);
        for (index, addr) in shards.iter().enumerate() {
            let base = fnv1a(addr.as_bytes());
            for replica in 0..replicas {
                points.push((mix(base ^ mix(replica as u64)), index));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// The shard addresses the ring was built over, in insertion order.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards at all.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// A key's position on the ring.
    fn position(key: &str) -> u64 {
        mix(fnv1a(key.as_bytes()))
    }

    /// The shard owning `key` (its home), or `None` on an empty ring.
    pub fn shard_for(&self, key: &str) -> Option<&str> {
        self.successors(key).next()
    }

    /// The distinct shards met walking the ring from `key`'s position:
    /// the home shard first, then the failover order. Every shard
    /// appears exactly once.
    pub fn successors<'a>(&'a self, key: &str) -> impl Iterator<Item = &'a str> {
        let start = match self.points.is_empty() {
            true => 0,
            false => {
                let position = Self::position(key);
                // First point at or after the key, wrapping to 0.
                match self.points.partition_point(|&(p, _)| p < position) {
                    i if i == self.points.len() => 0,
                    i => i,
                }
            }
        };
        let mut seen = vec![false; self.shards.len()];
        let mut yielded = 0;
        let total = self.shards.len();
        let points = &self.points;
        let shards = &self.shards;
        let mut offset = 0;
        std::iter::from_fn(move || {
            while yielded < total && offset < points.len() {
                let (_, index) = points[(start + offset) % points.len()];
                offset += 1;
                if !seen[index] {
                    seen[index] = true;
                    yielded += 1;
                    return Some(shards[index].as_str());
                }
            }
            None
        })
    }

    /// The same ring without `addr` — what a client sees after marking
    /// a shard dead. Keys the removed shard did not own keep their
    /// owners (minimal remap; asserted by the unit tests).
    pub fn without(&self, addr: &str) -> HashRing {
        let replicas = match self.shards.len() {
            0 => Self::DEFAULT_REPLICAS,
            n => self.points.len() / n,
        };
        Self::with_replicas(self.shards.iter().filter(|s| *s != addr).cloned(), replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(count: usize) -> Vec<String> {
        // Shaped like real cache keys: the canonical spec string.
        (0..count)
            .map(|i| {
                format!(
                    "algo=bfdn;family=comb;n={};k={};seed={};delay_ms=0",
                    200 + (i % 7) * 100,
                    1 << (i % 5),
                    i
                )
            })
            .collect()
    }

    fn shard_addrs(count: usize) -> Vec<String> {
        (0..count)
            .map(|i| format!("127.0.0.1:{}", 4180 + 2 * i))
            .collect()
    }

    #[test]
    fn distribution_stays_within_15_percent_of_uniform() {
        let keys = keys(20_000);
        for shards in 3..=8usize {
            let ring = HashRing::new(shard_addrs(shards));
            let mut counts = vec![0usize; shards];
            for key in &keys {
                let home = ring.shard_for(key).expect("non-empty ring");
                let index = ring.shards().iter().position(|s| s == home).unwrap();
                counts[index] += 1;
            }
            let uniform = keys.len() as f64 / shards as f64;
            for (index, &count) in counts.iter().enumerate() {
                let deviation = (count as f64 - uniform).abs() / uniform;
                assert!(
                    deviation <= 0.15,
                    "{shards} shards: shard {index} got {count} of {} keys \
                     ({deviation:.3} from uniform)",
                    keys.len()
                );
            }
        }
    }

    #[test]
    fn removing_a_shard_remaps_only_its_keys() {
        let keys = keys(10_000);
        let addrs = shard_addrs(5);
        let ring = HashRing::new(addrs.clone());
        for removed in &addrs {
            let smaller = ring.without(removed);
            assert_eq!(smaller.len(), addrs.len() - 1);
            let mut remapped = 0usize;
            for key in &keys {
                let before = ring.shard_for(key).unwrap();
                let after = smaller.shard_for(key).unwrap();
                if before == removed {
                    remapped += 1;
                    assert_ne!(after, removed);
                } else {
                    assert_eq!(
                        before, after,
                        "key `{key}` moved although its shard survived"
                    );
                }
            }
            assert!(remapped > 0, "the removed shard owned nothing");
        }
    }

    #[test]
    fn successors_visit_every_shard_once_home_first() {
        let ring = HashRing::new(shard_addrs(4));
        for key in keys(50) {
            let order: Vec<&str> = ring.successors(&key).collect();
            assert_eq!(order.len(), 4);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicates in {order:?}");
            assert_eq!(Some(order[0]), ring.shard_for(&key));
        }
    }

    #[test]
    fn rings_over_the_same_shards_agree() {
        let a = HashRing::new(shard_addrs(6));
        let b = HashRing::new(shard_addrs(6));
        for key in keys(500) {
            assert_eq!(a.shard_for(&key), b.shard_for(&key));
        }
        assert!(HashRing::new(Vec::<String>::new()).shard_for("x").is_none());
    }
}
