//! The Figure 1 region map.

use crate::{best_ell, guarantee, Algorithm};
use std::fmt::Write as _;

/// The best-guarantee map over a logarithmic `(n, D)` grid for a fixed
/// `k` — the reproduction of Figure 1.
///
/// Cells with `D > n` hold no trees and are left blank (the figure's
/// shaded region).
///
/// # Example
///
/// ```
/// use bfdn_analysis::RegionMap;
/// let map = RegionMap::compute(64, 30, 18);
/// let ascii = map.to_ascii();
/// assert!(ascii.contains('B')); // BFDN wins somewhere
/// assert!(ascii.contains('C')); // CTE wins somewhere
/// ```
#[derive(Clone, Debug)]
pub struct RegionMap {
    k: usize,
    /// log₂(n) per column.
    log_n: Vec<f64>,
    /// log₂(D) per row (bottom row first).
    log_d: Vec<f64>,
    /// `cells[row * width + col]`, `None` where `D > n`.
    cells: Vec<Option<Algorithm>>,
}

impl RegionMap {
    /// Maximum log₂(n) of the grid.
    pub const MAX_LOG_N: f64 = 36.0;
    /// Maximum log₂(D) of the grid.
    pub const MAX_LOG_D: f64 = 30.0;

    /// Computes the argmin of the four guarantees over a `width × height`
    /// grid with `log₂ n ∈ [2, MAX_LOG_N]`, `log₂ D ∈ [0, MAX_LOG_D]`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or the grid is degenerate.
    pub fn compute(k: usize, width: usize, height: usize) -> Self {
        Self::compute_with(k, width, height, Self::winner)
    }

    fn compute_with(
        k: usize,
        width: usize,
        height: usize,
        winner: fn(usize, usize, usize) -> Algorithm,
    ) -> Self {
        assert!(k >= 2, "region maps need at least two robots");
        assert!(width >= 2 && height >= 2, "grid too small");
        let log_n: Vec<f64> = (0..width)
            .map(|c| 2.0 + (Self::MAX_LOG_N - 2.0) * c as f64 / (width - 1) as f64)
            .collect();
        let log_d: Vec<f64> = (0..height)
            .map(|r| Self::MAX_LOG_D * r as f64 / (height - 1) as f64)
            .collect();
        let mut cells = vec![None; width * height];
        for (r, &ld) in log_d.iter().enumerate() {
            for (c, &ln) in log_n.iter().enumerate() {
                if ld > ln {
                    continue; // no tree has D > n
                }
                let n = (2f64.powf(ln)).round() as usize;
                let d = (2f64.powf(ld)).round().max(1.0) as usize;
                cells[r * width + c] = Some(winner(n, d, k));
            }
        }
        RegionMap {
            k,
            log_n,
            log_d,
            cells,
        }
    }

    /// Computes the map using Appendix A's *asymptotic decision
    /// boundaries* instead of the numeric argmin.
    ///
    /// With every hidden constant set to 1, Yo*'s polylogarithmic
    /// prefactor dominates at any laptop-reachable `k`, so the numeric
    /// map of [`RegionMap::compute`] never awards it a cell; the paper's
    /// figure is drawn in the `k → ∞` regime where those prefactors
    /// vanish, with axes extending to `n = e^k` and `D = e^{log²k}`.
    /// This variant reconstructs that schematic in log space over the
    /// figure's own axis ranges (`ln n` up to `2k/log k`, `ln D` up to
    /// `1.5·log²k`), assigning each cell by the pairwise dominance
    /// calculations of [`crate::appendix_a`] (transcribed to log space, since
    /// `n` overflows any integer type at these scales).
    ///
    /// # Panics
    ///
    /// Panics if `k < 3` or the grid is degenerate.
    pub fn compute_schematic(k: usize, width: usize, height: usize) -> Self {
        assert!(k >= 3, "the schematic needs log log k > 0");
        assert!(width >= 2 && height >= 2, "grid too small");
        let k_f = k as f64;
        let log_k = k_f.ln();
        let loglog_k = log_k.ln();
        // Axis ranges of the paper's figure, in natural logs.
        let max_ln_n = 2.0 * k_f / log_k;
        let max_ln_d = 1.5 * log_k * log_k;
        let ln2 = std::f64::consts::LN_2;
        let log_n: Vec<f64> = (0..width)
            .map(|c| (2.0 + (max_ln_n - 2.0) * c as f64 / (width - 1) as f64) / ln2)
            .collect();
        let log_d: Vec<f64> = (0..height)
            .map(|r| (max_ln_d * r as f64 / (height - 1) as f64) / ln2)
            .collect();
        let mut cells = vec![None; width * height];
        for (r, &ld2) in log_d.iter().enumerate() {
            for (c, &ln2n) in log_n.iter().enumerate() {
                if ld2 > ln2n {
                    continue; // no tree has D > n
                }
                let ln_n = ln2n * ln2;
                let ln_d = ld2 * ln2;
                cells[r * width + c] =
                    Some(Self::schematic_winner_log(ln_n, ln_d, k_f, log_k, loglog_k));
            }
        }
        RegionMap {
            k,
            log_n,
            log_d,
            cells,
        }
    }

    /// Cell assignment by Appendix A's dominance rules, in log space.
    fn schematic_winner_log(ln_n: f64, ln_d: f64, k: f64, log_k: f64, loglog_k: f64) -> Algorithm {
        let ln2 = std::f64::consts::LN_2;
        // Admissible recursion parameter ℓ ≤ log k / log log k, ℓ ≥ 2.
        let ell_cap = (log_k / loglog_k.max(1.0)).floor().max(2.0);
        // Pick the admissible ℓ ≥ 2 minimizing the BFDN_ℓ guarantee in
        // log space (the max of its two terms).
        let bfdn_l_cost = |l: f64| -> f64 {
            let work = ln_n - log_k / l; // ln(n / k^{1/ℓ})
            let depth = l * ln2 + loglog_k + (1.0 + 1.0 / l) * ln_d; // ln(2^ℓ log k D^{1+1/ℓ})
            work.max(depth)
        };
        let mut ell = 2.0;
        for cand in 2..=(ell_cap as u32) {
            if bfdn_l_cost(f64::from(cand)) < bfdn_l_cost(ell) {
                ell = f64::from(cand);
            }
        }
        // BFDN_ℓ region: the recursion beats plain BFDN
        // (n/k^{1/ℓ} < D², Appendix A's last comparison) and beats CTE
        // (2^ℓ·log k·D^{1+1/ℓ} < n/log k, the direct condition).
        let recursion_beats_bfdn = ln_n - log_k / ell < 2.0 * ln_d;
        let recursion_beats_cte = ell * ln2 + 2.0 * loglog_k + (1.0 + 1.0 / ell) * ln_d < ln_n;
        if recursion_beats_bfdn && recursion_beats_cte {
            return Algorithm::BfdnL(ell as u32);
        }
        // BFDN region: D²·log²k ≤ n (beats CTE; it also beats Yo* there,
        // whose guarantee carries at least a log k·log n prefactor on the
        // same n/k term).
        let bfdn_beats_cte = 2.0 * ln_d + 2.0 * loglog_k <= ln_n;
        if bfdn_beats_cte && !recursion_beats_bfdn {
            return Algorithm::Bfdn;
        }
        // Yo* region: n ≤ e^{k/log k} and D ≤ e^{log²k} and not so deep
        // that CTE's D-term wins (D ≥ (n/log n)·log²k).
        let yostar_n = ln_n <= k / log_k;
        let yostar_d = ln_d <= log_k * log_k;
        let cte_deep = ln_d >= ln_n - ln_n.max(2.0).ln() + 2.0 * loglog_k;
        if yostar_n && yostar_d && !cte_deep {
            return Algorithm::YoStar;
        }
        Algorithm::Cte
    }

    /// The best algorithm for a concrete `(n, D)` point.
    pub fn winner_at(&self, n: usize, d: usize) -> Algorithm {
        Self::winner(n, d, self.k)
    }

    fn winner(n: usize, d: usize, k: usize) -> Algorithm {
        let candidates = [
            Algorithm::Cte,
            Algorithm::YoStar,
            Algorithm::Bfdn,
            Algorithm::BfdnL(best_ell(n, d, k)),
        ];
        candidates
            .into_iter()
            .min_by(|&a, &b| guarantee(a, n, d, k).total_cmp(&guarantee(b, n, d, k)))
            .expect("non-empty candidate list")
    }

    /// Number of robots `k` the map was computed for.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fraction of valid cells won by `alg` (ignoring the `ℓ` parameter
    /// for `BFDN_ℓ`).
    pub fn share(&self, alg: Algorithm) -> f64 {
        let valid: Vec<&Algorithm> = self.cells.iter().flatten().collect();
        if valid.is_empty() {
            return 0.0;
        }
        let hits = valid
            .iter()
            .filter(|&&&c| {
                matches!(
                    (c, alg),
                    (Algorithm::Cte, Algorithm::Cte)
                        | (Algorithm::YoStar, Algorithm::YoStar)
                        | (Algorithm::Bfdn, Algorithm::Bfdn)
                        | (Algorithm::BfdnL(_), Algorithm::BfdnL(_))
                )
            })
            .count();
        hits as f64 / valid.len() as f64
    }

    /// Renders the map in ASCII, `log₂ D` increasing upwards and `log₂ n`
    /// rightwards, as in Figure 1. Legend: `C` = CTE, `Y` = Yo*, `B` =
    /// BFDN, `L` = `BFDN_ℓ`, blank = no trees (`D > n`).
    pub fn to_ascii(&self) -> String {
        let width = self.log_n.len();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 1 region map, k = {} (C=CTE, Y=Yo*, B=BFDN, L=BFDN_l)",
            self.k
        );
        for (r, &ld) in self.log_d.iter().enumerate().rev() {
            let _ = write!(out, "log2 D={ld:5.1} |");
            for c in 0..width {
                let ch = self.cells[r * width + c].map_or(' ', Algorithm::label);
                out.push(ch);
            }
            out.push('\n');
        }
        let _ = writeln!(out, "{}+{}", " ".repeat(12), "-".repeat(width));
        let _ = writeln!(
            out,
            "{} log2 n = {:.0} .. {:.0}",
            " ".repeat(12),
            self.log_n.first().unwrap(),
            self.log_n.last().unwrap()
        );
        out
    }

    /// Emits `log2_n,log2_d,winner` CSV rows for plotting.
    pub fn to_csv(&self) -> String {
        let width = self.log_n.len();
        let mut out = String::from("log2_n,log2_d,winner\n");
        for (r, &ld) in self.log_d.iter().enumerate() {
            for (c, &ln) in self.log_n.iter().enumerate() {
                if let Some(alg) = self.cells[r * width + c] {
                    let _ = writeln!(out, "{ln:.3},{ld:.3},{}", alg.name());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_map_awards_cte_bfdn_and_recursion() {
        // With unit constants Yo* never wins at laptop-reachable k (see
        // `compute_schematic`); the other three split the plane.
        let map = RegionMap::compute(1024, 48, 30);
        for alg in [Algorithm::Cte, Algorithm::Bfdn, Algorithm::BfdnL(2)] {
            assert!(
                map.share(alg) > 0.0,
                "{alg} should win somewhere in Figure 1"
            );
        }
    }

    #[test]
    fn schematic_map_shows_all_four_regions() {
        let map = RegionMap::compute_schematic(1024, 48, 30);
        for alg in [
            Algorithm::Cte,
            Algorithm::YoStar,
            Algorithm::Bfdn,
            Algorithm::BfdnL(2),
        ] {
            assert!(
                map.share(alg) > 0.0,
                "{alg} should win somewhere in the schematic Figure 1"
            );
        }
    }

    #[test]
    fn shares_sum_to_one() {
        let map = RegionMap::compute(64, 30, 20);
        let total: f64 = [
            Algorithm::Cte,
            Algorithm::YoStar,
            Algorithm::Bfdn,
            Algorithm::BfdnL(2),
        ]
        .iter()
        .map(|&a| map.share(a))
        .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bfdn_wins_the_wide_shallow_corner() {
        let map = RegionMap::compute(256, 30, 20);
        assert_eq!(map.winner_at(1 << 34, 4), Algorithm::Bfdn);
    }

    #[test]
    fn infeasible_region_is_blank() {
        let map = RegionMap::compute(64, 30, 20);
        let ascii = map.to_ascii();
        // The top-left corner (D huge, n small) must be blank.
        let first_grid_line = ascii.lines().nth(1).unwrap();
        let after_bar = first_grid_line.split('|').nth(1).unwrap();
        assert!(after_bar.starts_with(' '));
    }

    #[test]
    fn csv_has_rows() {
        let map = RegionMap::compute(64, 10, 8);
        let csv = map.to_csv();
        assert!(csv.lines().count() > 20);
        assert!(csv.starts_with("log2_n,log2_d,winner"));
    }
}
