//! The pairwise comparisons of Appendix A, as executable predicates.
//!
//! Each function returns `true` when the paper's Appendix A calculation
//! says the first algorithm outperforms the second for the given
//! parameters (up to the multiplicative constants the appendix drops).

/// BFDN is faster than CTE in the range `D²·log²k ≤ n` (comparing the
/// suboptimal terms `D²·log k` and `n/log k`).
pub fn bfdn_beats_cte(n: usize, d: usize, k: usize) -> bool {
    let log_k = (k.max(2) as f64).ln();
    (d as f64).powi(2) * log_k * log_k <= n as f64
}

/// Yo* can outperform CTE only when `n ≤ e^k` (simplifying Yo* to
/// `log(n)·n/k + D`).
pub fn yostar_can_beat_cte_n(n: usize, k: usize) -> bool {
    (n as f64).ln() <= k as f64
}

/// Yo* can outperform CTE only when `D ≤ e^{log²k}` (simplifying Yo* to
/// `e^{√log D}·n/k + D`).
pub fn yostar_can_beat_cte_d(d: usize, k: usize) -> bool {
    let log_k = (k.max(2) as f64).ln();
    (d.max(1) as f64).ln() <= log_k * log_k
}

/// CTE outperforms Yo* for trees with `D ≥ (n/log n)·log²k`
/// (simplifying Yo* to `D·log n·log k`).
pub fn cte_beats_yostar_deep(n: usize, d: usize, k: usize) -> bool {
    let n_f = n.max(2) as f64;
    let log_k = (k.max(2) as f64).ln();
    d as f64 >= n_f / n_f.ln() * log_k * log_k
}

/// BFDN is faster than Yo* when `k·D² ≤ n/k` (simplifying Yo* to
/// `log(k)·n/k + D`).
pub fn bfdn_beats_yostar(n: usize, d: usize, k: usize) -> bool {
    (k as f64) * (d as f64).powi(2) <= n as f64 / k as f64
}

/// `BFDN_ℓ` may outperform CTE only when `ℓ < log k / log log k`.
pub fn ell_is_admissible(ell: u32, k: usize) -> bool {
    let log_k = (k.max(3) as f64).ln();
    f64::from(ell) < log_k / log_k.ln().max(f64::MIN_POSITIVE)
}

/// `BFDN_ℓ` outperforms CTE when `D < n^{ℓ/(ℓ+1)} / (k·log²k)`.
pub fn bfdn_l_beats_cte(n: usize, d: usize, k: usize, ell: u32) -> bool {
    let l = f64::from(ell.max(1));
    let log_k = (k.max(2) as f64).ln();
    (d as f64) < (n as f64).powf(l / (l + 1.0)) / (k as f64 * log_k * log_k)
}

/// BFDN outperforms `BFDN_ℓ` when `n/k > D²`; `BFDN_ℓ` wins when
/// `n/k^{1/ℓ} < D²`. Returns `None` in the gap between the two rules.
pub fn bfdn_vs_bfdn_l(n: usize, d: usize, k: usize, ell: u32) -> Option<bool> {
    let d2 = (d as f64).powi(2);
    let k_f = k as f64;
    if n as f64 / k_f > d2 {
        Some(true) // plain BFDN wins
    } else if n as f64 / k_f.powf(1.0 / f64::from(ell.max(1))) < d2 {
        Some(false) // the recursion wins
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{guarantee, Algorithm};

    #[test]
    fn predicates_match_formula_argmin_in_clear_regimes() {
        let k = 256;
        // Shallow + huge n: BFDN beats CTE, predicate agrees.
        assert!(bfdn_beats_cte(1 << 26, 16, k));
        assert!(
            guarantee(Algorithm::Bfdn, 1 << 26, 16, k) < guarantee(Algorithm::Cte, 1 << 26, 16, k)
        );
        // Deep + smallish n: CTE beats BFDN.
        assert!(!bfdn_beats_cte(1 << 14, 1 << 10, k));
        assert!(
            guarantee(Algorithm::Cte, 1 << 14, 1 << 10, k)
                < guarantee(Algorithm::Bfdn, 1 << 14, 1 << 10, k)
        );
    }

    #[test]
    fn admissible_ell_shrinks_with_small_k() {
        assert!(ell_is_admissible(2, 1 << 20));
        assert!(!ell_is_admissible(40, 16));
    }

    #[test]
    fn bfdn_vs_recursion_gap() {
        // n/k > D²: plain wins.
        assert_eq!(bfdn_vs_bfdn_l(1 << 20, 4, 16, 2), Some(true));
        // n/k^{1/ℓ} < D²: recursion wins.
        assert_eq!(bfdn_vs_bfdn_l(1 << 10, 1 << 10, 16, 2), Some(false));
    }

    #[test]
    fn yostar_windows() {
        assert!(yostar_can_beat_cte_n(1000, 64));
        assert!(!yostar_can_beat_cte_n(usize::MAX, 8));
        assert!(yostar_can_beat_cte_d(100, 64));
    }

    #[test]
    fn cte_beats_yostar_on_very_deep_trees() {
        // Threshold D ≥ (n/log n)·log²k: with n = 2^16 and k = 8 the
        // threshold is ≈ 25.5k, so D = 2^15 qualifies.
        assert!(cte_beats_yostar_deep(1 << 16, 1 << 15, 8));
        assert!(!cte_beats_yostar_deep(1 << 26, 4, 64));
    }
}
