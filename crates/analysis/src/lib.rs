//! Runtime-guarantee formulas and the Figure 1 region map.
//!
//! Figure 1 of the paper shows, for a fixed number of robots `k`, the
//! regions of the `(n, D)` plane in which each of four algorithms — CTE
//! \[10\], Yo* \[13\], BFDN and `BFDN_ℓ` — has the best runtime *guarantee*.
//! This crate transcribes the guarantees (Appendix A's simplifications)
//! and recomputes the map: [`RegionMap::compute`] evaluates the argmin
//! over a logarithmic grid, [`RegionMap::to_ascii`] renders it like the
//! paper's figure, and the [`appendix_a`] predicates reproduce the
//! pairwise boundary calculations.
//!
//! # Example
//!
//! ```
//! use bfdn_analysis::{Algorithm, RegionMap};
//!
//! let map = RegionMap::compute(1024, 40, 24);
//! // Deep in the work-dominated corner (huge n, small D) BFDN's
//! // 2n/k + D²log k dominates CTE's n/log k.
//! assert_eq!(map.winner_at(1 << 30, 1 << 3), Algorithm::Bfdn);
//! println!("{}", map.to_ascii());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appendix_a;
mod guarantees;
mod regions;

pub use guarantees::{best_ell, guarantee, Algorithm};
pub use regions::RegionMap;

/// Competitive ratio of a measured runtime against the offline yardstick
/// `n/k + D` (Section 1's definition, up to its constant).
///
/// # Example
///
/// ```
/// let r = bfdn_analysis::competitive_ratio(400.0, 1000, 20, 10);
/// assert!((r - 400.0 / 120.0).abs() < 1e-9);
/// ```
pub fn competitive_ratio(rounds: f64, n: usize, depth: usize, k: usize) -> f64 {
    rounds / (n as f64 / k as f64 + depth as f64)
}

/// Competitive overhead of a measured runtime: rounds beyond the
/// irreducible `2n/k` work term (the criterion of Brass et al. \[1\] that
/// the paper adopts).
pub fn competitive_overhead(rounds: f64, n: usize, k: usize) -> f64 {
    rounds - 2.0 * n as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_overhead() {
        assert!((competitive_ratio(100.0, 100, 0, 1) - 1.0).abs() < 1e-12);
        assert!((competitive_overhead(250.0, 1000, 10) - 50.0).abs() < 1e-12);
    }
}
