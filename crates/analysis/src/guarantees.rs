//! The four runtime guarantees compared in Figure 1.

use std::fmt;

/// The algorithms whose guarantees Figure 1 compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Collective Tree Exploration \[10\]: `n/log k + D`.
    Cte,
    /// Yo* \[13\]: `2^{O(√(log D · log log k))}·log k·(log n + log k)·(n/k + D)`.
    YoStar,
    /// Breadth-First Depth-Next (Theorem 1): `2n/k + D²·(log k + 3)`.
    Bfdn,
    /// Recursive BFDN with parameter `ℓ` (Theorem 10).
    BfdnL(u32),
}

impl Algorithm {
    /// Short label used by the region map.
    pub fn label(self) -> char {
        match self {
            Algorithm::Cte => 'C',
            Algorithm::YoStar => 'Y',
            Algorithm::Bfdn => 'B',
            Algorithm::BfdnL(_) => 'L',
        }
    }

    /// Human-readable name.
    pub fn name(self) -> String {
        match self {
            Algorithm::Cte => "CTE".into(),
            Algorithm::YoStar => "Yo*".into(),
            Algorithm::Bfdn => "BFDN".into(),
            Algorithm::BfdnL(l) => format!("BFDN_{l}"),
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Evaluates the runtime guarantee of `alg` on trees with `n` nodes and
/// depth `d`, explored by `k` robots. Constants hidden by the `O(·)` of
/// CTE and Yo* are taken as 1, as in the paper's Appendix A comparison;
/// BFDN and `BFDN_ℓ` use their exact theorem constants.
///
/// # Panics
///
/// Panics if `k < 2` (logarithms of the number of robots appear in every
/// formula) or `n < 2`.
pub fn guarantee(alg: Algorithm, n: usize, d: usize, k: usize) -> f64 {
    assert!(k >= 2, "guarantees compare teams of at least two robots");
    assert!(n >= 2, "trees with at least one edge");
    let n_f = n as f64;
    let d_f = (d.max(1)) as f64;
    let k_f = k as f64;
    let log_k = k_f.ln();
    match alg {
        Algorithm::Cte => n_f / log_k + d_f,
        Algorithm::YoStar => {
            let warp = (d_f.ln().max(0.0) * k_f.ln().ln().max(0.0)).sqrt().exp2();
            warp * log_k * (n_f.ln() + log_k) * (n_f / k_f + d_f)
        }
        Algorithm::Bfdn => 2.0 * n_f / k_f + d_f * d_f * (log_k + 3.0),
        Algorithm::BfdnL(l) => {
            let l_f = f64::from(l.max(1));
            4.0 * n_f / k_f.powf(1.0 / l_f)
                + 2f64.powf(l_f + 1.0) * (l_f + 1.0 + log_k / l_f) * d_f.powf(1.0 + 1.0 / l_f)
        }
    }
}

/// The `ℓ ≥ 2` minimizing the `BFDN_ℓ` guarantee, subject to the
/// figure's constraint `ℓ ≤ cst·log k / log log k` (with `cst = 1`).
pub fn best_ell(n: usize, d: usize, k: usize) -> u32 {
    let k_f = k as f64;
    let cap = (k_f.ln() / k_f.ln().ln().max(1.0)).floor().max(2.0) as u32;
    (2..=cap.max(2))
        .min_by(|&a, &b| {
            guarantee(Algorithm::BfdnL(a), n, d, k).total_cmp(&guarantee(
                Algorithm::BfdnL(b),
                n,
                d,
                k,
            ))
        })
        .unwrap_or(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_a_bfdn_vs_cte_crossover() {
        // BFDN beats CTE iff roughly D²·log²k ≤ n.
        let k = 256;
        let d = 100;
        let log_k = (k as f64).ln();
        let threshold = (d as f64 * d as f64 * log_k * log_k) as usize;
        let n_small = threshold / 100;
        let n_large = threshold * 100;
        assert!(
            guarantee(Algorithm::Cte, n_small.max(2), d, k)
                < guarantee(Algorithm::Bfdn, n_small.max(2), d, k)
        );
        assert!(
            guarantee(Algorithm::Bfdn, n_large, d, k) < guarantee(Algorithm::Cte, n_large, d, k)
        );
    }

    #[test]
    fn bfdn_l_wins_on_deep_trees() {
        // n/k^{1/ℓ} < D² regime (Appendix A's last comparison).
        let k = 1024;
        let n = 1 << 22;
        let d = 1 << 14; // very deep
        let ell = best_ell(n, d, k);
        assert!(guarantee(Algorithm::BfdnL(ell), n, d, k) < guarantee(Algorithm::Bfdn, n, d, k));
    }

    #[test]
    fn bfdn_wins_on_shallow_wide_trees() {
        let k = 64;
        let n = 1 << 24;
        let d = 8;
        let g_bfdn = guarantee(Algorithm::Bfdn, n, d, k);
        for other in [Algorithm::Cte, Algorithm::YoStar, Algorithm::BfdnL(2)] {
            assert!(g_bfdn < guarantee(other, n, d, k), "{other}");
        }
    }

    #[test]
    fn labels_unique() {
        let labels = [
            Algorithm::Cte.label(),
            Algorithm::YoStar.label(),
            Algorithm::Bfdn.label(),
            Algorithm::BfdnL(2).label(),
        ];
        let mut sorted = labels.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least two robots")]
    fn k1_is_rejected() {
        guarantee(Algorithm::Cte, 10, 2, 1);
    }
}
