//! Property-based tests for the guarantee formulas and region maps.

use bfdn_analysis::{best_ell, guarantee, Algorithm, RegionMap};
use proptest::prelude::*;

proptest! {
    /// Guarantees are positive and finite wherever defined.
    #[test]
    fn guarantees_are_positive_finite(
        n in 2usize..1_000_000,
        d in 1usize..100_000,
        k in 2usize..100_000,
        ell in 1u32..6,
    ) {
        for alg in [Algorithm::Cte, Algorithm::YoStar, Algorithm::Bfdn, Algorithm::BfdnL(ell)] {
            let g = guarantee(alg, n, d, k);
            prop_assert!(g.is_finite() && g > 0.0, "{alg}: {g}");
        }
    }

    /// Every guarantee is monotone in n (more work never helps).
    #[test]
    fn guarantees_monotone_in_n(
        n in 2usize..500_000,
        d in 1usize..10_000,
        k in 2usize..10_000,
    ) {
        for alg in [Algorithm::Cte, Algorithm::YoStar, Algorithm::Bfdn, Algorithm::BfdnL(2)] {
            prop_assert!(
                guarantee(alg, n, d, k) <= guarantee(alg, 2 * n, d, k) + 1e-9,
                "{alg} not monotone in n"
            );
        }
    }

    /// `best_ell` really minimizes over its admissible range.
    #[test]
    fn best_ell_minimizes(n in 2usize..1_000_000, d in 1usize..100_000, k in 3usize..100_000) {
        let ell = best_ell(n, d, k);
        let best = guarantee(Algorithm::BfdnL(ell), n, d, k);
        for cand in 2..=6u32 {
            let k_f = k as f64;
            let cap = (k_f.ln() / k_f.ln().ln().max(1.0)).floor().max(2.0) as u32;
            if cand <= cap.max(2) {
                prop_assert!(best <= guarantee(Algorithm::BfdnL(cand), n, d, k) + 1e-9);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The numeric map's cells agree with a direct argmin evaluation.
    #[test]
    fn region_map_cells_match_argmin(k_pow in 3u32..12) {
        let k = 1usize << k_pow;
        let map = RegionMap::compute(k, 12, 8);
        for (n, d) in [(1usize << 20, 4usize), (1 << 12, 1 << 10), (1 << 30, 1 << 8)] {
            let winner = map.winner_at(n, d);
            let w = guarantee(winner, n, d, k);
            for other in [
                Algorithm::Cte,
                Algorithm::YoStar,
                Algorithm::Bfdn,
                Algorithm::BfdnL(best_ell(n, d, k)),
            ] {
                prop_assert!(w <= guarantee(other, n, d, k) + 1e-9);
            }
        }
    }
}
