//! Optional per-round event recording.

use crate::Move;
use bfdn_trees::NodeId;

/// What happened in one round: the position of every robot *after* the
/// synchronous move, and the move each robot performed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundRecord {
    /// Round number (0-based).
    pub round: u64,
    /// Selected (post-validation) move per robot.
    pub moves: Vec<Move>,
    /// Positions after the move.
    pub positions: Vec<NodeId>,
}

/// A full per-round log of a simulation, recorded when tracing is enabled
/// via [`Simulator::record_trace`](crate::Simulator::record_trace).
///
/// Traces make runs comparable step by step — experiment E7 uses them to
/// check that the write-read implementation of BFDN visits the same
/// node-set milestones as the complete-communication one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<RoundRecord>,
}

impl Trace {
    pub(crate) fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// All recorded rounds in order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The first round at which `v` was occupied by some robot, if any.
    pub fn first_visit(&self, v: NodeId) -> Option<u64> {
        self.records
            .iter()
            .find(|r| r.positions.contains(&v))
            .map(|r| r.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_visit_finds_earliest() {
        let mut t = Trace::default();
        t.push(RoundRecord {
            round: 0,
            moves: vec![Move::Stay],
            positions: vec![NodeId::ROOT],
        });
        t.push(RoundRecord {
            round: 1,
            moves: vec![Move::Down(bfdn_trees::Port::new(0))],
            positions: vec![NodeId::new(1)],
        });
        assert_eq!(t.first_visit(NodeId::new(1)), Some(1));
        assert_eq!(t.first_visit(NodeId::new(2)), None);
        assert_eq!(t.len(), 2);
    }
}
