//! Optional per-round event recording.

use crate::Move;
use bfdn_trees::NodeId;
use std::collections::HashMap;
use std::sync::OnceLock;

/// What happened in one round: the position of every robot *after* the
/// synchronous move, and the move each robot performed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RoundRecord {
    /// Round number (0-based).
    pub round: u64,
    /// Selected (post-validation) move per robot.
    pub moves: Vec<Move>,
    /// Positions after the move.
    pub positions: Vec<NodeId>,
}

/// A full per-round log of a simulation, recorded when tracing is enabled
/// via [`Simulator::record_trace`](crate::Simulator::record_trace).
///
/// Traces make runs comparable step by step — experiment E7 uses them to
/// check that the write-read implementation of BFDN visits the same
/// node-set milestones as the complete-communication one.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    records: Vec<RoundRecord>,
    /// Lazily built first-visit index; never serialized or compared —
    /// it is derived data.
    #[cfg_attr(feature = "serde", serde(skip))]
    first_visits: OnceLock<HashMap<NodeId, u64>>,
}

/// Equality is over the recorded rounds only; whether the lazy
/// first-visit index has been built is not observable.
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
    }
}

impl Eq for Trace {}

impl Trace {
    pub(crate) fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
        // Any cached index is stale now.
        self.first_visits.take();
    }

    /// All recorded rounds in order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The earliest round at which each node was occupied by some robot,
    /// built lazily on first use and cached.
    ///
    /// One pass over the trace replaces the per-query linear scan that
    /// [`Trace::first_visit`] used to perform — experiment E7 queries
    /// every node of the tree, which was quadratic in the trace length.
    pub fn first_visits(&self) -> &HashMap<NodeId, u64> {
        self.first_visits.get_or_init(|| {
            let mut index = HashMap::new();
            for record in &self.records {
                for &v in &record.positions {
                    index.entry(v).or_insert(record.round);
                }
            }
            index
        })
    }

    /// The first round at which `v` was occupied by some robot, if any.
    pub fn first_visit(&self, v: NodeId) -> Option<u64> {
        self.first_visits().get(&v).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::default();
        t.push(RoundRecord {
            round: 0,
            moves: vec![Move::Stay],
            positions: vec![NodeId::ROOT],
        });
        t.push(RoundRecord {
            round: 1,
            moves: vec![Move::Down(bfdn_trees::Port::new(0))],
            positions: vec![NodeId::new(1)],
        });
        t
    }

    #[test]
    fn first_visit_finds_earliest() {
        let t = sample();
        assert_eq!(t.first_visit(NodeId::new(1)), Some(1));
        assert_eq!(t.first_visit(NodeId::new(2)), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn index_invalidated_by_push() {
        let mut t = sample();
        // Build the cache, then extend the trace: the index must pick up
        // the new round.
        assert_eq!(t.first_visits().len(), 2);
        t.push(RoundRecord {
            round: 2,
            moves: vec![Move::Down(bfdn_trees::Port::new(0))],
            positions: vec![NodeId::new(2)],
        });
        assert_eq!(t.first_visit(NodeId::new(2)), Some(2));
        assert_eq!(t.first_visits().len(), 3);
    }

    #[test]
    fn equality_ignores_the_cache() {
        let a = sample();
        let b = sample();
        let _ = a.first_visits();
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(a, c);
    }

    #[test]
    fn index_keeps_earliest_round() {
        let mut t = sample();
        t.push(RoundRecord {
            round: 2,
            moves: vec![Move::Up],
            positions: vec![NodeId::ROOT],
        });
        // ROOT re-visited at round 2 must not displace round 0.
        assert_eq!(t.first_visit(NodeId::ROOT), Some(0));
    }
}
