//! Synchronous round-based simulation of collaborative tree exploration.
//!
//! This crate implements the model of Section 2 of the paper: `k` robots
//! start at the root of an *unknown* tree; at each round every robot
//! moves along one incident edge (or stays); edges adjacent to newly
//! occupied nodes become *discovered*; exploration is complete when every
//! edge has been traversed and (in the standard setting) all robots are
//! back at the root.
//!
//! The [`Simulator`] owns the ground-truth [`Tree`](bfdn_trees::Tree) and
//! the fog-of-war [`PartialTree`](bfdn_trees::PartialTree); an
//! [`Explorer`] only ever sees the latter, so the information discipline
//! of the online model holds by construction.
//!
//! Movement adversaries (Section 4.2's break-downs) are modelled by
//! [`MoveSchedule`]s that decide, per round and robot, who is allowed to
//! move.
//!
//! # Observability
//!
//! The simulator is generic over a [`bfdn_obs::EventSink`], defaulting
//! to the zero-cost [`bfdn_obs::NullSink`]. Attaching a sink with
//! [`Simulator::with_sink`] streams typed events
//! ([`RoundCompleted`](bfdn_obs::Event::RoundCompleted),
//! [`EdgeDiscovered`](bfdn_obs::Event::EdgeDiscovered),
//! [`RobotStalled`](bfdn_obs::Event::RobotStalled), and algorithm-level
//! events via [`Explorer::select_moves_observed`]) without changing the
//! simulated run.
//!
//! # Example
//!
//! ```
//! use bfdn_sim::{Explorer, Move, RoundContext, Simulator};
//! use bfdn_trees::generators;
//!
//! /// One robot walking an online DFS.
//! struct Dfs;
//! impl Explorer for Dfs {
//!     fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
//!         let at = ctx.positions[0];
//!         out[0] = match ctx.tree.dangling_ports(at).next() {
//!             Some(p) => Move::Down(p),
//!             None => Move::Up,
//!         };
//!     }
//!     fn name(&self) -> &'static str { "dfs" }
//! }
//!
//! let tree = generators::comb(4, 2);
//! let mut sim = Simulator::new(&tree, 1);
//! let outcome = sim.run(&mut Dfs).unwrap();
//! assert_eq!(outcome.rounds, 2 * tree.num_edges() as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explorer;
mod metrics;
pub mod parallel;
pub mod render;
mod schedule;
mod simulator;
mod trace;

pub use explorer::{Explorer, Move, RoundContext};
pub use metrics::Metrics;
pub use schedule::{
    AlwaysAllow, BurstStall, MoveSchedule, PostSelectionSchedule, RandomStall, ReactiveStall,
    RoundRobinStall, TargetedStall,
};
pub use simulator::{explore, Outcome, SimError, Simulator, StopCondition};
pub use trace::{RoundRecord, Trace};
