//! The interface between exploration algorithms and the simulator.

use bfdn_obs::EventSink;
use bfdn_trees::{NodeId, PartialTree, Port};

/// The move a robot selects for the next synchronous step.
///
/// `Down` ports are local port numbers at the robot's current node and
/// may point at dangling edges — traversing one is how new nodes are
/// explored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Move {
    /// Do not move this round (the `⊥` of Algorithm 1).
    #[default]
    Stay,
    /// Move to the parent. At the root this is interpreted as [`Move::Stay`]
    /// (Algorithm 1, line 23).
    Up,
    /// Move through a downward port (explored or dangling).
    Down(Port),
}

/// Everything an explorer may read when selecting moves — exactly the
/// information available in the complete-communication model: the
/// partially explored tree, the robot positions, and the round number.
#[derive(Debug)]
pub struct RoundContext<'a> {
    /// The current round (starting at 0).
    pub round: u64,
    /// The fog-of-war view `T_online = (V, E)`.
    pub tree: &'a PartialTree,
    /// Position of every robot (all at [`NodeId::ROOT`] initially).
    pub positions: &'a [NodeId],
    /// Whether each robot is allowed to move this round (all `true`
    /// without a break-down adversary; see Section 4.2).
    pub allowed: &'a [bool],
}

impl RoundContext<'_> {
    /// Number of robots `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.positions.len()
    }
}

/// A collaborative exploration algorithm in the complete-communication
/// model: a function from the partially explored tree and the robot
/// positions to one selected move per robot (Section 2).
pub trait Explorer {
    /// Fills `out[i]` with the move of robot `i`. `out` is pre-filled
    /// with [`Move::Stay`].
    ///
    /// Robots with `ctx.allowed[i] == false` will be stalled by the
    /// simulator regardless of what is selected here.
    fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]);

    /// [`Explorer::select_moves`] with access to the simulator's event
    /// sink, so instrumented algorithms can report decisions the
    /// simulator cannot see (BFDN emits
    /// [`Event::Reanchor`](bfdn_obs::Event::Reanchor) here). The default
    /// ignores the sink — existing explorers need no change — and the
    /// simulator always calls this entry point.
    fn select_moves_observed(
        &mut self,
        ctx: &RoundContext<'_>,
        out: &mut [Move],
        _sink: &mut dyn EventSink,
    ) {
        self.select_moves(ctx, out);
    }

    /// A short name for reports.
    fn name(&self) -> &str {
        "explorer"
    }
}

/// Boxed explorers forward to their inner value, letting harnesses hold
/// heterogeneous algorithm collections.
impl<E: Explorer + ?Sized> Explorer for Box<E> {
    fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
        (**self).select_moves(ctx, out);
    }

    fn select_moves_observed(
        &mut self,
        ctx: &RoundContext<'_>,
        out: &mut [Move],
        sink: &mut dyn EventSink,
    ) {
        (**self).select_moves_observed(ctx, out, sink);
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_move_is_stay() {
        assert_eq!(Move::default(), Move::Stay);
    }

    #[test]
    fn boxed_explorer_forwards() {
        struct Named;
        impl Explorer for Named {
            fn select_moves(&mut self, _: &RoundContext<'_>, _: &mut [Move]) {}
            fn name(&self) -> &str {
                "named"
            }
        }
        let b: Box<dyn Explorer> = Box::new(Named);
        assert_eq!(b.name(), "named");
    }
}
