//! Movement adversaries for the break-down setting of Section 4.2.
//!
//! A [`MoveSchedule`] decides, at each round, which robots are allowed to
//! move (`M_ti = 1` in the paper's notation). The paper's guarantee
//! (Proposition 7) is that BFDN finishes once the *average allowed moves
//! per robot* reaches `2n/k + D²(log k + 3)`, for any schedule.

use bfdn_trees::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Decides which robots are allowed to move each round.
pub trait MoveSchedule {
    /// Fills `allowed[i]` for every robot at the given round. `positions`
    /// lets targeted adversaries react to where robots stand.
    fn fill(&mut self, round: u64, positions: &[NodeId], allowed: &mut [bool]);

    /// A short name for reports.
    fn name(&self) -> &str {
        "schedule"
    }
}

/// The benign schedule: every robot may move every round.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysAllow;

impl MoveSchedule for AlwaysAllow {
    fn fill(&mut self, _round: u64, _positions: &[NodeId], allowed: &mut [bool]) {
        allowed.fill(true);
    }

    fn name(&self) -> &str {
        "always-allow"
    }
}

/// Stalls each robot independently with probability `p` each round.
#[derive(Clone, Debug)]
pub struct RandomStall {
    p: f64,
    rng: StdRng,
}

impl RandomStall {
    /// Creates the schedule with stall probability `p ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)` (with `p = 1` no robot ever
    /// moves and no schedule with finitely many allowed moves explores).
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "stall probability must be in [0, 1)"
        );
        RandomStall {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl MoveSchedule for RandomStall {
    fn fill(&mut self, _round: u64, _positions: &[NodeId], allowed: &mut [bool]) {
        for a in allowed.iter_mut() {
            *a = self.rng.random::<f64>() >= self.p;
        }
    }

    fn name(&self) -> &str {
        "random-stall"
    }
}

/// Allows only a rotating window of `active` robots each round.
#[derive(Clone, Copy, Debug)]
pub struct RoundRobinStall {
    active: usize,
}

impl RoundRobinStall {
    /// Creates the schedule; `active` robots move per round.
    ///
    /// # Panics
    ///
    /// Panics if `active == 0`.
    pub fn new(active: usize) -> Self {
        assert!(active > 0, "at least one robot must move per round");
        RoundRobinStall { active }
    }
}

impl MoveSchedule for RoundRobinStall {
    fn fill(&mut self, round: u64, _positions: &[NodeId], allowed: &mut [bool]) {
        let k = allowed.len();
        allowed.fill(false);
        let start = (round as usize * self.active) % k;
        for j in 0..self.active.min(k) {
            allowed[(start + j) % k] = true;
        }
    }

    fn name(&self) -> &str {
        "round-robin-stall"
    }
}

/// Stalls every robot during periodic bursts: within each period of
/// `period` rounds, the first `stall_len` rounds block everyone.
#[derive(Clone, Copy, Debug)]
pub struct BurstStall {
    period: u64,
    stall_len: u64,
}

impl BurstStall {
    /// Creates the schedule.
    ///
    /// # Panics
    ///
    /// Panics if `stall_len >= period` (no robot would ever move).
    pub fn new(period: u64, stall_len: u64) -> Self {
        assert!(stall_len < period, "bursts must leave rounds to move in");
        BurstStall { period, stall_len }
    }
}

impl MoveSchedule for BurstStall {
    fn fill(&mut self, round: u64, _positions: &[NodeId], allowed: &mut [bool]) {
        let blocked = round % self.period < self.stall_len;
        allowed.fill(!blocked);
    }

    fn name(&self) -> &str {
        "burst-stall"
    }
}

/// The adversary sketched in Section 4.2's proof discussion: it blocks
/// robots standing at the *deepest* occupied node, trying to pile all
/// robots onto one anchor (this is why the `log Δ` part of the guarantee
/// is forfeited under break-downs). A fraction of the fleet always stays
/// allowed so the schedule keeps granting moves.
#[derive(Clone, Debug)]
pub struct TargetedStall {
    depths: Vec<usize>,
    block_fraction: f64,
    rng: StdRng,
}

impl TargetedStall {
    /// Creates the schedule. `depths[v]` must give the ground-truth depth
    /// of every node (the adversary is omniscient); `block_fraction` of
    /// the deepest robots are stalled each round.
    ///
    /// # Panics
    ///
    /// Panics if `block_fraction` is not in `[0, 1)`.
    pub fn new(depths: Vec<usize>, block_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&block_fraction),
            "block fraction must be in [0, 1)"
        );
        TargetedStall {
            depths,
            block_fraction,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl MoveSchedule for TargetedStall {
    fn fill(&mut self, _round: u64, positions: &[NodeId], allowed: &mut [bool]) {
        let k = positions.len();
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.depths[positions[i].index()]));
        let to_block = ((k as f64) * self.block_fraction) as usize;
        allowed.fill(true);
        for &i in order.iter().take(to_block) {
            // Randomize slightly so the adversary is not perfectly
            // predictable by index order.
            if self.rng.random::<f64>() < 0.95 {
                allowed[i] = false;
            }
        }
    }

    fn name(&self) -> &str {
        "targeted-stall"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(k: usize) -> Vec<NodeId> {
        vec![NodeId::ROOT; k]
    }

    #[test]
    fn always_allow_allows_all() {
        let mut s = AlwaysAllow;
        let mut a = vec![false; 4];
        s.fill(0, &positions(4), &mut a);
        assert!(a.iter().all(|&x| x));
    }

    #[test]
    fn random_stall_is_deterministic_per_seed() {
        let mut s1 = RandomStall::new(0.5, 9);
        let mut s2 = RandomStall::new(0.5, 9);
        let mut a1 = vec![false; 16];
        let mut a2 = vec![false; 16];
        for r in 0..10 {
            s1.fill(r, &positions(16), &mut a1);
            s2.fill(r, &positions(16), &mut a2);
            assert_eq!(a1, a2);
        }
    }

    #[test]
    fn random_stall_mixes() {
        let mut s = RandomStall::new(0.5, 1);
        let mut a = vec![false; 1000];
        s.fill(0, &positions(1000), &mut a);
        let allowed = a.iter().filter(|&&x| x).count();
        assert!(allowed > 300 && allowed < 700);
    }

    #[test]
    fn round_robin_counts() {
        let mut s = RoundRobinStall::new(3);
        let mut a = vec![false; 8];
        for r in 0..20 {
            s.fill(r, &positions(8), &mut a);
            assert_eq!(a.iter().filter(|&&x| x).count(), 3, "round {r}");
        }
    }

    #[test]
    fn round_robin_rotates_over_everyone() {
        let mut s = RoundRobinStall::new(2);
        let mut seen = [false; 5];
        let mut a = vec![false; 5];
        for r in 0..10 {
            s.fill(r, &positions(5), &mut a);
            for (i, &x) in a.iter().enumerate() {
                seen[i] |= x;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn burst_blocks_then_releases() {
        let mut s = BurstStall::new(5, 2);
        let mut a = vec![false; 2];
        s.fill(0, &positions(2), &mut a);
        assert!(a.iter().all(|&x| !x));
        s.fill(2, &positions(2), &mut a);
        assert!(a.iter().all(|&x| x));
    }

    #[test]
    #[should_panic(expected = "bursts must leave")]
    fn full_burst_rejected() {
        BurstStall::new(3, 3);
    }

    #[test]
    fn targeted_blocks_deepest() {
        let depths = vec![0usize, 1, 2, 3];
        let mut s = TargetedStall::new(depths, 0.5, 3);
        let pos = vec![
            NodeId::new(3),
            NodeId::new(0),
            NodeId::new(2),
            NodeId::new(1),
        ];
        let mut a = vec![true; 4];
        let mut blocked_deep = 0;
        for r in 0..50 {
            s.fill(r, &pos, &mut a);
            if !a[0] {
                blocked_deep += 1;
            }
            // The shallowest robot (index 1, depth 0) is essentially never
            // among the deepest half.
            assert!(a[1], "round {r}");
        }
        assert!(blocked_deep > 40);
    }
}

/// A movement adversary that decides *after* seeing the robots' selected
/// moves — the stronger model sketched in Remark 8 of the paper. Used
/// with [`Simulator::run_post`](crate::Simulator::run_post).
pub trait PostSelectionSchedule {
    /// Fills `allowed[i]` given the already-selected `moves`.
    fn fill_after(
        &mut self,
        round: u64,
        positions: &[NodeId],
        moves: &[crate::Move],
        allowed: &mut [bool],
    );

    /// A short name for reports.
    fn name(&self) -> &str {
        "post-selection-schedule"
    }
}

/// The nastiest reactive adversary: each round it stalls exactly the
/// robots that selected a *downward* move — the moves that could discover
/// new edges — leaving up-moves and idlers untouched (they still count as
/// allowed, inflating `A(M)` for free).
///
/// Without a fairness cap this adversary **livelocks any explorer**: it
/// blocks every would-be discoverer forever while granting unbounded
/// useless allowed moves, so Proposition 7's `A(M)`-budget guarantee does
/// *not* carry over to the Remark 8 model — a negative result this
/// reproduction documents (see `tests/breakdown_resilience.rs`). With
/// `max_consecutive` finite, a robot blocked that many rounds in a row
/// must be released, and exploration completes with `A(M)` inflated by at
/// most a `max_consecutive + 1` factor.
#[derive(Clone, Debug)]
pub struct ReactiveStall {
    /// `None` = unrestricted (livelocks); `Some(c)` = fairness cap.
    max_consecutive: Option<u32>,
    consecutive: Vec<u32>,
}

impl ReactiveStall {
    /// The unrestricted adversary (demonstrates the livelock).
    pub fn unrestricted() -> Self {
        ReactiveStall {
            max_consecutive: None,
            consecutive: Vec::new(),
        }
    }

    /// The fair adversary: no robot is stalled more than
    /// `max_consecutive` rounds in a row.
    ///
    /// # Panics
    ///
    /// Panics if `max_consecutive == 0`.
    pub fn with_fairness(max_consecutive: u32) -> Self {
        assert!(max_consecutive >= 1, "a zero cap blocks nobody");
        ReactiveStall {
            max_consecutive: Some(max_consecutive),
            consecutive: Vec::new(),
        }
    }
}

impl PostSelectionSchedule for ReactiveStall {
    fn fill_after(
        &mut self,
        _round: u64,
        positions: &[NodeId],
        moves: &[crate::Move],
        allowed: &mut [bool],
    ) {
        if self.consecutive.len() != positions.len() {
            self.consecutive = vec![0; positions.len()];
        }
        allowed.fill(true);
        for i in 0..positions.len() {
            let wants_down = matches!(moves[i], crate::Move::Down(_));
            let may_block = self.max_consecutive.is_none_or(|c| self.consecutive[i] < c);
            if wants_down && may_block {
                allowed[i] = false;
                self.consecutive[i] += 1;
            } else {
                self.consecutive[i] = 0;
            }
        }
    }

    fn name(&self) -> &str {
        "reactive-stall"
    }
}

#[cfg(test)]
mod post_selection_tests {
    use super::*;
    use crate::Move;
    use bfdn_trees::Port;

    #[test]
    fn reactive_stall_blocks_only_down_movers() {
        let mut s = ReactiveStall::unrestricted();
        let positions = vec![NodeId::ROOT; 4];
        let moves = vec![
            Move::Down(Port::new(0)),
            Move::Up,
            Move::Stay,
            Move::Down(Port::new(1)),
        ];
        let mut allowed = vec![true; 4];
        s.fill_after(0, &positions, &moves, &mut allowed);
        assert_eq!(allowed, vec![false, true, true, false]);
    }

    #[test]
    fn fairness_cap_releases_after_c_rounds() {
        let mut s = ReactiveStall::with_fairness(2);
        let positions = vec![NodeId::ROOT];
        let moves = vec![Move::Down(Port::new(0))];
        let mut allowed = vec![true];
        s.fill_after(0, &positions, &moves, &mut allowed);
        assert!(!allowed[0]);
        s.fill_after(1, &positions, &moves, &mut allowed);
        assert!(!allowed[0]);
        // Third consecutive attempt must be released.
        s.fill_after(2, &positions, &moves, &mut allowed);
        assert!(allowed[0]);
    }

    #[test]
    #[should_panic(expected = "zero cap")]
    fn zero_fairness_rejected() {
        ReactiveStall::with_fairness(0);
    }
}
