//! Deterministic work-sharing, shared by the experiment harness, the
//! service's worker pool, and the explorers' intra-round robot loops.
//!
//! [`par_map`] fans independent work items out over `std::thread::scope`
//! workers pulling from an atomic queue, then reassembles the results in
//! item order — so a table built from the output is byte-identical to
//! the sequential run no matter how the items were scheduled. Experiment
//! functions stay pure (tree generation keeps its sequential RNG
//! consumption order; only the simulations fan out), which is what lets
//! the committed `EXPERIMENTS.md` numbers survive the parallel harness.
//!
//! [`par_shards_mut`] is the mutable counterpart used *inside* a round:
//! per-robot state lives in one `Vec`, each shard owns a disjoint
//! contiguous window of robots, and results come back in shard order so
//! the sequential merge that follows sees them in robot-index order.
//! Two independent knobs govern the two levels: `BFDN_THREADS` sizes
//! the across-configuration fan-out ([`num_threads`]) while
//! `BFDN_ROUND_THREADS` sizes the within-instance robot sharding
//! ([`round_threads`], default 1 — opt-in, so the two levels do not
//! oversubscribe a machine by default).
//!
//! Workers claim *chunks* of adjacent items rather than single indices:
//! one `fetch_add` per chunk instead of per item, which cuts queue
//! contention when many small configurations (E5's share maps, the
//! ablation arms, small service batches) meet a high thread count. The
//! chunk size adapts to the input — small inputs degrade to unit claims,
//! so load balance on skewed items is unchanged where it matters.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Each worker keeps roughly this many claims available to every thread,
/// so the tail of the queue still balances across skewed item costs.
const CHUNKS_PER_THREAD: usize = 8;

/// Worker count: the `BFDN_THREADS` environment variable when set (and
/// at least 1), otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("BFDN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Intra-round worker count: the `BFDN_ROUND_THREADS` environment
/// variable when set (and at least 1), otherwise **1**. Unlike
/// [`num_threads`], sharding a round is opt-in: the harness already
/// fans out across configurations with `BFDN_THREADS`, and running both
/// levels wide by default would oversubscribe the machine.
pub fn round_threads() -> usize {
    if let Ok(v) = std::env::var("BFDN_ROUND_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    1
}

/// Applies `f` to every item, running items across [`num_threads`]
/// scoped threads (the calling thread participates as one worker), and
/// returns the results **in item order** regardless of scheduling.
///
/// A panic in any `f` call (experiments assert paper bounds by
/// panicking) is propagated to the caller with its original payload.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with_threads(items, num_threads(), f)
}

/// [`par_map`] with an explicit worker count (testable without touching
/// the `BFDN_THREADS` process environment).
pub fn par_map_with_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    // One atomic claim hands out `chunk` adjacent indices.
    let chunk = (items.len() / (threads * CHUNKS_PER_THREAD)).max(1);
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads - 1)
            .map(|_| s.spawn(|| drain_queue(&next, chunk, items, &f)))
            .collect();
        let mut all = drain_queue(&next, chunk, items, &f);
        for h in handles {
            match h.join() {
                Ok(part) => all.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Splits `items` into `threads` contiguous shards and runs `f` on each
/// shard concurrently (the calling thread works the first shard while
/// the spawned threads work the rest). `f` receives the shard's
/// starting item index and the mutable shard slice; results come back
/// **in shard order** — equivalently, ascending start index — so a
/// caller that concatenates per-shard output sees items in index order
/// regardless of scheduling. A panic in any shard propagates to the
/// caller with its original payload.
///
/// Shard sizes differ by at most one item (`len/threads` rounded up for
/// the first `len % threads` shards), so a uniform per-item cost splits
/// evenly. This is the primitive behind the explorers' sharded round
/// loops: phase A computes per-robot candidates into the shard's slots
/// in parallel, then a sequential merge walks the slots in robot-index
/// order.
pub fn par_shards_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return vec![f(0, items)];
    }
    let len = items.len();
    let (base, extra) = (len / threads, len % threads);
    let mut shards: Vec<(usize, &mut [T])> = Vec::with_capacity(threads);
    let mut rest = items;
    let mut start = 0;
    for i in 0..threads {
        let size = base + usize::from(i < extra);
        let (head, tail) = rest.split_at_mut(size);
        shards.push((start, head));
        start += size;
        rest = tail;
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut shards = shards.into_iter();
        let (first_start, first) = shards.next().expect("threads >= 1 shards");
        let handles: Vec<_> = shards
            .map(|(start, shard)| s.spawn(move || f(start, shard)))
            .collect();
        let mut out = Vec::with_capacity(threads);
        out.push(f(first_start, first));
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// One worker: claim the next unclaimed chunk of indices until the
/// queue is dry, tagging each result with its item index for the stable
/// merge.
fn drain_queue<T, R>(
    next: &AtomicUsize,
    chunk: usize,
    items: &[T],
    f: &(impl Fn(&T) -> R + Sync),
) -> Vec<(usize, R)> {
    let mut out = Vec::new();
    loop {
        let start = next.fetch_add(chunk, Ordering::Relaxed);
        if start >= items.len() {
            return out;
        }
        let end = (start + chunk).min(items.len());
        for (i, item) in items.iter().enumerate().take(end).skip(start) {
            out.push((i, f(item)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = par_map(&items, |&i| {
            // Skew the per-item cost so late items often finish first.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * 3
        });
        assert_eq!(out, (0..97).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_panics_propagate_with_their_payload() {
        let res = std::panic::catch_unwind(|| {
            par_map_with_threads(&[1u32, 2, 3, 4], 4, |&x| {
                assert!(x != 3, "bound violated on item {x}");
                x
            })
        });
        let payload = res.expect_err("the panic must cross par_map");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("bound violated on item 3"), "got: {msg}");
    }

    #[test]
    fn matches_sequential_map_on_heavier_closures() {
        let items: Vec<u64> = (0..64).collect();
        let sequential: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xABCD).collect();
        assert_eq!(par_map(&items, |&x| x.wrapping_mul(x) ^ 0xABCD), sequential);
    }

    #[test]
    fn chunked_claiming_stays_index_stable_at_every_thread_count() {
        // Large enough that chunk > 1 for small thread counts: with 4
        // threads and 8 chunks per thread, 4096 items → chunk 128.
        let items: Vec<u64> = (0..4096).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 2 + 1).collect();
        for threads in [2, 3, 4, 7, 16] {
            let out = par_map_with_threads(&items, threads, |&x| x * 2 + 1);
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn shards_partition_the_slice_and_report_in_index_order() {
        let mut items: Vec<u64> = (0..103).collect();
        for threads in [1, 2, 3, 4, 7, 16, 103, 200] {
            let out = par_shards_mut(&mut items, threads, |start, shard| {
                for (offset, item) in shard.iter_mut().enumerate() {
                    assert_eq!(*item as usize % 1000, start + offset, "slot index matches");
                    *item += 1000;
                }
                (start, shard.len())
            });
            // Starts ascend and the lengths tile the slice exactly.
            let mut expect_start = 0;
            for &(start, len) in &out {
                assert_eq!(start, expect_start, "threads={threads}");
                expect_start += len;
            }
            assert_eq!(expect_start, items.len());
        }
        // Every item was visited exactly once per pass (8 passes above).
        assert!(items.iter().enumerate().all(|(i, &v)| v == 8000 + i as u64));
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let mut items = vec![0u8; 10];
        let sizes: Vec<usize> = par_shards_mut(&mut items, 4, |_, shard| shard.len());
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn shard_panics_propagate_with_their_payload() {
        let mut items: Vec<usize> = (0..64).collect();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_shards_mut(&mut items, 4, |start, _| {
                assert!(start != 48, "shard {start} exploded");
            })
        }));
        let payload = res.expect_err("the panic must cross par_shards_mut");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("shard 48 exploded"), "got: {msg}");
    }

    #[test]
    fn round_threads_defaults_to_one_without_the_env_knob() {
        if std::env::var("BFDN_ROUND_THREADS").is_err() {
            assert_eq!(round_threads(), 1);
        }
    }

    #[test]
    fn every_item_is_claimed_exactly_once_under_chunking() {
        use std::sync::atomic::AtomicU64;
        let counters: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        let items: Vec<usize> = (0..1000).collect();
        par_map_with_threads(&items, 8, |&i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
