//! The synchronous round loop.

use crate::{
    AlwaysAllow, Explorer, Metrics, Move, MoveSchedule, PostSelectionSchedule, RoundContext,
    RoundRecord, Trace,
};
use bfdn_obs::{Event, EventSink, NullSink};
use bfdn_trees::{NodeId, PartialTree, Tree};
use std::fmt;

/// When a run is considered finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StopCondition {
    /// Every edge traversed *and* every robot back at the root — the
    /// standard objective of the paper.
    #[default]
    ExploredAndReturned,
    /// Every edge traversed, robots may be anywhere — the objective of
    /// the break-down setting (Section 4.2), where the adversary can
    /// strand robots forever.
    Explored,
}

/// Why a run stopped without reaching its stop condition.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The round limit was hit — the explorer is likely stuck.
    RoundLimit {
        /// The limit that was exceeded.
        limit: u64,
        /// Number of explored nodes at that point.
        explored: usize,
        /// Total nodes in the ground-truth tree.
        total: usize,
    },
    /// An explorer selected a port that does not exist at the robot's
    /// node — an algorithm bug the simulator reports instead of acting
    /// on.
    InvalidMove {
        /// The offending robot.
        robot: usize,
        /// Where it stood.
        at: NodeId,
        /// The nonexistent port it selected.
        port: bfdn_trees::Port,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimit {
                limit,
                explored,
                total,
            } => write!(
                f,
                "round limit {limit} exceeded with {explored}/{total} nodes explored"
            ),
            SimError::InvalidMove { robot, at, port } => {
                write!(
                    f,
                    "robot {robot} selected nonexistent port {port} at node {at}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The result of a finished run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Rounds until the stop condition held.
    pub rounds: u64,
    /// Accumulated counters.
    pub metrics: Metrics,
    /// The per-round log, when tracing was enabled.
    pub trace: Option<Trace>,
}

/// Drives an [`Explorer`] over a ground-truth [`Tree`] it cannot see.
///
/// The simulator maintains the fog-of-war [`PartialTree`], validates and
/// applies the selected moves synchronously, reveals newly explored
/// nodes, and accumulates [`Metrics`].
///
/// The simulator is generic over an [`EventSink`] (default: the
/// zero-cost [`NullSink`]); [`Simulator::with_sink`] attaches live
/// telemetry — every round, edge discovery and adversary stall becomes a
/// typed [`Event`], and instrumented explorers receive the same sink
/// through [`Explorer::select_moves_observed`]. An unobserved run
/// monomorphizes to exactly the uninstrumented loop.
///
/// # Example
///
/// See the [crate-level example](crate).
pub struct Simulator<'t, S: EventSink = NullSink> {
    tree: &'t Tree,
    k: usize,
    partial: PartialTree,
    positions: Vec<NodeId>,
    /// First parent→child traversal done, indexed by child node.
    down_done: Vec<bool>,
    /// First child→parent traversal done, indexed by child node.
    up_done: Vec<bool>,
    round: u64,
    max_rounds: u64,
    metrics: Metrics,
    trace: Option<Trace>,
    sink: S,
}

impl<'t> Simulator<'t> {
    /// Creates a simulator for `k` robots at the root of `tree`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(tree: &'t Tree, k: usize) -> Self {
        assert!(k >= 1, "need at least one robot");
        let n = tree.len();
        // Generous default: BFDN's termination proof gives 3·D·n rounds;
        // leave slack for deliberately bad baselines and tiny trees.
        let max_rounds = 16 * (n as u64 + 2) * (tree.depth() as u64 + 2) + 1024;
        Simulator {
            tree,
            k,
            partial: PartialTree::new(n, tree.degree(NodeId::ROOT)),
            positions: vec![NodeId::ROOT; k],
            down_done: vec![false; n],
            up_done: vec![false; n],
            round: 0,
            max_rounds,
            metrics: Metrics::new(k),
            trace: None,
            sink: NullSink,
        }
    }
}

impl<'t, S: EventSink> Simulator<'t, S> {
    /// Attaches an event sink, consuming the current one. Typically
    /// chained off [`Simulator::new`]:
    ///
    /// ```
    /// use bfdn_obs::MemorySink;
    /// use bfdn_sim::Simulator;
    /// use bfdn_trees::generators;
    ///
    /// let tree = generators::star(2);
    /// let sim = Simulator::new(&tree, 1).with_sink(MemorySink::default());
    /// # let _ = sim;
    /// ```
    pub fn with_sink<S2: EventSink>(self, sink: S2) -> Simulator<'t, S2> {
        Simulator {
            tree: self.tree,
            k: self.k,
            partial: self.partial,
            positions: self.positions,
            down_done: self.down_done,
            up_done: self.up_done,
            round: self.round,
            max_rounds: self.max_rounds,
            metrics: self.metrics,
            trace: self.trace,
            sink,
        }
    }

    /// The attached event sink.
    #[inline]
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the attached event sink.
    #[inline]
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the simulator, returning the sink (e.g. to read a
    /// [`BoundTracker`](bfdn_obs::BoundTracker)'s series after a run).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Overrides the safety round limit.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Enables per-round trace recording.
    pub fn record_trace(mut self) -> Self {
        self.trace = Some(Trace::default());
        self
    }

    /// Number of robots.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current fog-of-war view.
    #[inline]
    pub fn partial(&self) -> &PartialTree {
        &self.partial
    }

    /// Current robot positions.
    #[inline]
    pub fn positions(&self) -> &[NodeId] {
        &self.positions
    }

    /// Rounds elapsed so far.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Runs `explorer` to completion (explored and returned) with no
    /// movement adversary.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimit`] if the explorer fails to finish
    /// within the safety limit.
    pub fn run(&mut self, explorer: &mut dyn Explorer) -> Result<Outcome, SimError> {
        self.run_with(
            explorer,
            &mut AlwaysAllow,
            StopCondition::ExploredAndReturned,
        )
    }

    /// Runs `explorer` under a movement `schedule` until `stop` holds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimit`] if the stop condition is not
    /// reached within the safety limit.
    pub fn run_with(
        &mut self,
        explorer: &mut dyn Explorer,
        schedule: &mut dyn MoveSchedule,
        stop: StopCondition,
    ) -> Result<Outcome, SimError> {
        // Timed only when observed, so the unobserved monomorphization
        // (NullSink) keeps its clock-free hot loop.
        let started = self.sink.enabled().then(std::time::Instant::now);
        let mut allowed = vec![true; self.k];
        let mut moves = vec![Move::Stay; self.k];
        while !self.stopped(stop) {
            if self.round >= self.max_rounds {
                return Err(SimError::RoundLimit {
                    limit: self.max_rounds,
                    explored: self.partial.num_explored(),
                    total: self.tree.len(),
                });
            }
            schedule.fill(self.round, &self.positions, &mut allowed);
            self.metrics.allowed_moves += allowed.iter().filter(|&&a| a).count() as u64;
            moves.fill(Move::Stay);
            explorer.select_moves_observed(
                &RoundContext {
                    round: self.round,
                    tree: &self.partial,
                    positions: &self.positions,
                    allowed: &allowed,
                },
                &mut moves,
                &mut self.sink,
            );
            self.apply(&allowed, &mut moves)?;
            self.finish_round(&allowed, &moves);
        }
        self.emit_round_loop_timer(started);
        Ok(Outcome {
            rounds: self.round,
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
        })
    }

    /// Runs `explorer` under a *post-selection* adversary (Remark 8 of
    /// the paper): the schedule sees the moves the robots selected
    /// *before* deciding who is stalled. The explorer cannot anticipate
    /// the blocking (its `ctx.allowed` is all-true), so blocked robots do
    /// reserve dangling edges they then fail to traverse — a strictly
    /// stronger adversary than [`Simulator::run_with`]'s.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimit`] if the stop condition is not
    /// reached within the safety limit.
    pub fn run_post(
        &mut self,
        explorer: &mut dyn Explorer,
        schedule: &mut dyn PostSelectionSchedule,
        stop: StopCondition,
    ) -> Result<Outcome, SimError> {
        let started = self.sink.enabled().then(std::time::Instant::now);
        let all_allowed = vec![true; self.k];
        let mut allowed = vec![true; self.k];
        let mut moves = vec![Move::Stay; self.k];
        while !self.stopped(stop) {
            if self.round >= self.max_rounds {
                return Err(SimError::RoundLimit {
                    limit: self.max_rounds,
                    explored: self.partial.num_explored(),
                    total: self.tree.len(),
                });
            }
            moves.fill(Move::Stay);
            explorer.select_moves_observed(
                &RoundContext {
                    round: self.round,
                    tree: &self.partial,
                    positions: &self.positions,
                    allowed: &all_allowed,
                },
                &mut moves,
                &mut self.sink,
            );
            schedule.fill_after(self.round, &self.positions, &moves, &mut allowed);
            self.metrics.allowed_moves += allowed.iter().filter(|&&a| a).count() as u64;
            self.apply(&allowed, &mut moves)?;
            self.finish_round(&allowed, &moves);
        }
        self.emit_round_loop_timer(started);
        Ok(Outcome {
            rounds: self.round,
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
        })
    }

    /// Emits the wall clock of a completed round loop as a
    /// [`Event::PhaseTimer`] named `sim_rounds`, so observed runs can
    /// split an `explore` phase into round-loop time versus explorer
    /// bookkeeping. No-op (and no clock reads) for unobserved runs.
    fn emit_round_loop_timer(&mut self, started: Option<std::time::Instant>) {
        if let Some(started) = started {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.sink.emit(&Event::PhaseTimer {
                phase: "sim_rounds",
                nanos,
            });
        }
    }

    /// Advances the simulation by exactly one synchronous round (no
    /// movement adversary), for callers that want to drive or visualize
    /// the exploration themselves. Returns `true` while the standard stop
    /// condition (explored and returned) has not been reached.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidMove`] if the explorer selects a
    /// nonexistent port (round limits are the caller's business here).
    ///
    /// # Example
    ///
    /// ```
    /// use bfdn_sim::{Explorer, Move, RoundContext, Simulator};
    /// use bfdn_trees::generators;
    ///
    /// struct Dfs;
    /// impl Explorer for Dfs {
    ///     fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
    ///         out[0] = match ctx.tree.dangling_ports(ctx.positions[0]).next() {
    ///             Some(p) => Move::Down(p),
    ///             None => Move::Up,
    ///         };
    ///     }
    /// }
    ///
    /// let tree = generators::path(2);
    /// let mut sim = Simulator::new(&tree, 1);
    /// while sim.step(&mut Dfs)? {}
    /// assert_eq!(sim.round(), 4); // 2(n-1) rounds, like `run`
    /// # Ok::<(), bfdn_sim::SimError>(())
    /// ```
    pub fn step(&mut self, explorer: &mut dyn Explorer) -> Result<bool, SimError> {
        if self.stopped(StopCondition::ExploredAndReturned) {
            return Ok(false);
        }
        let allowed = vec![true; self.k];
        let mut moves = vec![Move::Stay; self.k];
        self.metrics.allowed_moves += self.k as u64;
        explorer.select_moves_observed(
            &RoundContext {
                round: self.round,
                tree: &self.partial,
                positions: &self.positions,
                allowed: &allowed,
            },
            &mut moves,
            &mut self.sink,
        );
        self.apply(&allowed, &mut moves)?;
        self.finish_round(&allowed, &moves);
        Ok(!self.stopped(StopCondition::ExploredAndReturned))
    }

    /// Fraction of the ground-truth nodes explored so far, in `[0, 1]`
    /// (the simulator knows the total; explorers do not).
    pub fn progress(&self) -> f64 {
        self.partial.num_explored() as f64 / self.tree.len() as f64
    }

    /// Post-`apply` bookkeeping shared by every loop: advances the round
    /// counter, emits [`Event::RoundCompleted`], and records the trace.
    fn finish_round(&mut self, allowed: &[bool], moves: &[Move]) {
        self.round += 1;
        self.metrics.rounds = self.round;
        if self.sink.enabled() {
            let moved = moves.iter().filter(|m| !matches!(m, Move::Stay)).count() as u32;
            let stalled = allowed.iter().filter(|&&a| !a).count() as u32;
            self.sink.emit(&Event::RoundCompleted {
                round: self.round - 1,
                explored: self.partial.num_explored() as u64,
                moved,
                stalled,
            });
        }
        if let Some(trace) = &mut self.trace {
            trace.push(RoundRecord {
                round: self.round - 1,
                moves: moves.to_vec(),
                positions: self.positions.clone(),
            });
        }
    }

    fn stopped(&self, stop: StopCondition) -> bool {
        match stop {
            StopCondition::Explored => self.partial.is_complete(),
            StopCondition::ExploredAndReturned => {
                self.partial.is_complete() && self.positions.iter().all(|p| p.is_root())
            }
        }
    }

    /// Applies one synchronous move step; `moves` is normalized in place
    /// to the moves actually performed (stalled robots become `Stay`).
    #[allow(clippy::needless_range_loop)]
    fn apply(&mut self, allowed: &[bool], moves: &mut [Move]) -> Result<(), SimError> {
        for i in 0..self.k {
            if !allowed[i] {
                self.metrics.stalled += 1;
                moves[i] = Move::Stay;
                if self.sink.enabled() {
                    self.sink.emit(&Event::RobotStalled {
                        round: self.round,
                        robot: i as u32,
                        at: self.positions[i].index() as u32,
                    });
                }
                continue;
            }
            let at = self.positions[i];
            match moves[i] {
                Move::Stay => {
                    self.metrics.idle += 1;
                }
                Move::Up => {
                    match self.partial.parent(at) {
                        Some(parent) => {
                            if !self.up_done[at.index()] {
                                self.up_done[at.index()] = true;
                                self.metrics.edge_events += 1;
                            }
                            self.positions[i] = parent;
                            self.metrics.record_move(i);
                        }
                        None => {
                            // `up` at the root is `⊥` (Algorithm 1, l. 23).
                            moves[i] = Move::Stay;
                            self.metrics.idle += 1;
                        }
                    }
                }
                Move::Down(port) => {
                    let min_down = usize::from(!at.is_root());
                    if port.index() >= self.partial.degree(at) || port.index() < min_down {
                        return Err(SimError::InvalidMove { robot: i, at, port });
                    }
                    let child = match self.partial.child_at(at, port) {
                        Some(child) => child,
                        None => {
                            // A dangling edge: consult the ground truth.
                            let child = self
                                .tree
                                .neighbor(at, port)
                                .ok_or(SimError::InvalidMove { robot: i, at, port })?;
                            self.partial
                                .attach(at, port, child, self.tree.degree(child));
                            self.metrics.edges_discovered += 1;
                            if self.sink.enabled() {
                                self.sink.emit(&Event::EdgeDiscovered {
                                    round: self.round,
                                    robot: i as u32,
                                    parent: at.index() as u32,
                                    child: child.index() as u32,
                                    depth: self.partial.depth(child) as u32,
                                });
                            }
                            child
                        }
                    };
                    if !self.down_done[child.index()] {
                        self.down_done[child.index()] = true;
                        self.metrics.edge_events += 1;
                    }
                    self.positions[i] = child;
                    self.metrics.record_move(i);
                }
            }
        }
        Ok(())
    }
}

/// Convenience: runs `explorer` with `k` robots on `tree` to completion.
///
/// # Errors
///
/// Returns [`SimError::RoundLimit`] if the explorer fails to finish
/// within the safety limit.
///
/// # Example
///
/// ```
/// use bfdn_sim::{explore, Explorer, Move, RoundContext};
/// use bfdn_trees::generators;
///
/// struct Dfs;
/// impl Explorer for Dfs {
///     fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
///         let at = ctx.positions[0];
///         out[0] = match ctx.tree.dangling_ports(at).next() {
///             Some(p) => Move::Down(p),
///             None => Move::Up,
///         };
///     }
/// }
///
/// let tree = generators::star(3);
/// let outcome = explore(&tree, 1, &mut Dfs)?;
/// assert_eq!(outcome.rounds, 6);
/// # Ok::<(), bfdn_sim::SimError>(())
/// ```
pub fn explore(tree: &Tree, k: usize, explorer: &mut dyn Explorer) -> Result<Outcome, SimError> {
    Simulator::new(tree, k).run(explorer)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-parallel `positions`/`out` slices
mod tests {
    use super::*;
    use crate::RandomStall;
    use bfdn_trees::generators;

    /// A single-robot online DFS used as the reference explorer.
    struct Dfs;
    impl Explorer for Dfs {
        fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
            for i in 0..ctx.k() {
                let at = ctx.positions[i];
                out[i] = match ctx.tree.dangling_ports(at).next() {
                    Some(p) => Move::Down(p),
                    None => Move::Up,
                };
            }
        }
        fn name(&self) -> &str {
            "dfs"
        }
    }

    /// An explorer that never moves.
    struct Frozen;
    impl Explorer for Frozen {
        fn select_moves(&mut self, _: &RoundContext<'_>, _: &mut [Move]) {}
    }

    #[test]
    fn dfs_takes_two_edges_per_node() {
        for tree in [
            generators::path(9),
            generators::star(7),
            generators::comb(5, 3),
            generators::binary(4),
        ] {
            let outcome = explore(&tree, 1, &mut Dfs).unwrap();
            assert_eq!(outcome.rounds, 2 * tree.num_edges() as u64);
            assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
            assert_eq!(outcome.metrics.edge_events, 2 * tree.num_edges() as u64);
        }
    }

    #[test]
    fn trivial_tree_is_instantly_done() {
        let tree = generators::path(0);
        let outcome = explore(&tree, 3, &mut Frozen).unwrap();
        assert_eq!(outcome.rounds, 0);
    }

    #[test]
    fn frozen_explorer_hits_round_limit() {
        let tree = generators::path(3);
        let mut sim = Simulator::new(&tree, 2).with_max_rounds(50);
        let err = sim.run(&mut Frozen).unwrap_err();
        match err {
            SimError::RoundLimit {
                limit,
                explored,
                total,
            } => {
                assert_eq!(limit, 50);
                assert_eq!(explored, 1);
                assert_eq!(total, 4);
            }
            other => panic!("expected a round limit, got {other}"),
        }
    }

    #[test]
    fn up_at_root_is_stay() {
        struct AlwaysUp;
        impl Explorer for AlwaysUp {
            fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
                out.iter_mut().take(ctx.k()).for_each(|m| *m = Move::Up);
            }
        }
        let tree = generators::path(2);
        let mut sim = Simulator::new(&tree, 1).with_max_rounds(10);
        let err = sim.run(&mut AlwaysUp).unwrap_err();
        assert!(matches!(err, SimError::RoundLimit { .. }));
        // Robot never left the root.
        assert!(sim.positions().iter().all(|p| p.is_root()));
    }

    #[test]
    fn stalled_robots_do_not_move() {
        struct DownIfPossible;
        impl Explorer for DownIfPossible {
            fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
                for i in 0..ctx.k() {
                    if let Some(p) = ctx.tree.dangling_ports(ctx.positions[i]).next() {
                        out[i] = Move::Down(p);
                    }
                }
            }
        }
        struct NeverAllow;
        impl MoveSchedule for NeverAllow {
            fn fill(&mut self, _: u64, _: &[NodeId], allowed: &mut [bool]) {
                allowed.fill(false);
            }
        }
        let tree = generators::star(2);
        let mut sim = Simulator::new(&tree, 1).with_max_rounds(5);
        let err = sim
            .run_with(
                &mut DownIfPossible,
                &mut NeverAllow,
                StopCondition::Explored,
            )
            .unwrap_err();
        assert!(matches!(err, SimError::RoundLimit { .. }));
    }

    #[test]
    fn explored_stop_does_not_require_return() {
        let tree = generators::path(4);
        let mut sim = Simulator::new(&tree, 1);
        let outcome = sim
            .run_with(&mut Dfs, &mut AlwaysAllow, StopCondition::Explored)
            .unwrap();
        // DFS on a path reaches the tip at round D and has then traversed
        // every edge once.
        assert_eq!(outcome.rounds, 4);
        assert!(!sim.positions()[0].is_root());
    }

    #[test]
    fn dfs_survives_random_stalls() {
        let tree = generators::comb(6, 2);
        let mut sim = Simulator::new(&tree, 1);
        let mut schedule = RandomStall::new(0.4, 11);
        let outcome = sim
            .run_with(&mut Dfs, &mut schedule, StopCondition::ExploredAndReturned)
            .unwrap();
        assert!(outcome.rounds >= 2 * tree.num_edges() as u64);
        assert!(outcome.metrics.stalled > 0);
        assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
    }

    #[test]
    fn trace_records_every_round() {
        let tree = generators::star(2);
        let mut sim = Simulator::new(&tree, 1).record_trace();
        let outcome = sim.run(&mut Dfs).unwrap();
        let trace = outcome.trace.unwrap();
        assert_eq!(trace.len() as u64, outcome.rounds);
        assert_eq!(trace.first_visit(NodeId::new(1)), Some(0));
    }

    #[test]
    fn two_robots_crossing_same_dangling_edge() {
        // Both robots pick the same dangling port in the same round; the
        // edge must be discovered exactly once and both must move.
        struct BothDown;
        impl Explorer for BothDown {
            fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
                for i in 0..ctx.k() {
                    let at = ctx.positions[i];
                    out[i] = match ctx.tree.dangling_ports(at).next() {
                        Some(p) => Move::Down(p),
                        None => Move::Up,
                    };
                }
            }
        }
        let tree = generators::path(2);
        let mut sim = Simulator::new(&tree, 2);
        let outcome = sim.run(&mut BothDown).unwrap();
        assert_eq!(outcome.metrics.edges_discovered, 2);
        assert!(outcome.rounds >= 4);
    }

    #[test]
    fn invalid_ports_become_typed_errors() {
        struct BadPort;
        impl Explorer for BadPort {
            fn select_moves(&mut self, _: &RoundContext<'_>, out: &mut [Move]) {
                out[0] = Move::Down(bfdn_trees::Port::new(99));
            }
        }
        let tree = generators::path(2);
        let err = Simulator::new(&tree, 1).run(&mut BadPort).unwrap_err();
        assert!(
            matches!(err, SimError::InvalidMove { robot: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn step_api_walks_to_completion() {
        let tree = generators::star(2);
        let mut sim = Simulator::new(&tree, 1);
        while sim.step(&mut Dfs).unwrap() {
            assert!(sim.progress() > 0.0 && sim.progress() <= 1.0);
        }
        assert_eq!(sim.round(), 4);
        assert!((sim.progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_sink_observes_rounds_and_discoveries() {
        use bfdn_obs::{Event, MemorySink};
        let tree = generators::comb(5, 2);
        let mut sim = Simulator::new(&tree, 2).with_sink(MemorySink::default());
        let outcome = sim.run(&mut Dfs).unwrap();
        let sink = sim.into_sink();
        assert_eq!(
            sink.count(|e| matches!(e, Event::RoundCompleted { .. })) as u64,
            outcome.rounds
        );
        assert_eq!(
            sink.count(|e| matches!(e, Event::EdgeDiscovered { .. })) as u64,
            outcome.metrics.edges_discovered
        );
        // Without an adversary nothing stalls.
        assert_eq!(sink.count(|e| matches!(e, Event::RobotStalled { .. })), 0);
    }

    #[test]
    fn stall_events_match_the_stalled_metric() {
        use bfdn_obs::{Event, MemorySink};
        let tree = generators::comb(6, 2);
        let mut sim = Simulator::new(&tree, 2).with_sink(MemorySink::default());
        let outcome = sim
            .run_with(
                &mut Dfs,
                &mut RandomStall::new(0.3, 9),
                StopCondition::ExploredAndReturned,
            )
            .unwrap();
        assert!(outcome.metrics.stalled > 0);
        assert_eq!(
            sim.sink()
                .count(|e| matches!(e, Event::RobotStalled { .. })) as u64,
            outcome.metrics.stalled
        );
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        use bfdn_obs::MemorySink;
        let tree = generators::binary(4);
        let plain = explore(&tree, 3, &mut Dfs).unwrap();
        let mut sim = Simulator::new(&tree, 3).with_sink(MemorySink::default());
        let observed = sim.run(&mut Dfs).unwrap();
        assert_eq!(plain.rounds, observed.rounds);
        assert_eq!(plain.metrics, observed.metrics);
    }

    #[test]
    fn metrics_robot_rounds_equals_k_times_rounds() {
        let tree = generators::binary(3);
        let mut sim = Simulator::new(&tree, 4);
        let outcome = sim.run(&mut Dfs).unwrap();
        assert_eq!(outcome.metrics.robot_rounds(), 4 * outcome.rounds);
    }
}
