//! ASCII rendering of exploration traces — the Rust counterpart of the
//! Python demo the paper credits (a frame-by-frame view of who stands
//! where while the fog of war lifts).
//!
//! Intended for small trees (tens of nodes); the experiment harness uses
//! numbers, this module is for eyeballs and documentation.

use crate::Trace;
use bfdn_trees::{NodeId, Tree};

/// Renders frames of an exploration [`Trace`] over its ground-truth
/// [`Tree`].
///
/// Each frame draws the tree as an indented outline; nodes explored so
/// far are marked `o` (`?` if still unexplored at that round), and the
/// robots standing on a node are listed after it.
///
/// # Example
///
/// ```
/// use bfdn_sim::{render::TraceRenderer, Explorer, Move, RoundContext, Simulator};
/// use bfdn_trees::generators;
///
/// struct Dfs;
/// impl Explorer for Dfs {
///     fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
///         out[0] = match ctx.tree.dangling_ports(ctx.positions[0]).next() {
///             Some(p) => Move::Down(p),
///             None => Move::Up,
///         };
///     }
/// }
///
/// let tree = generators::star(2);
/// let mut sim = Simulator::new(&tree, 1).record_trace();
/// let outcome = sim.run(&mut Dfs)?;
/// let renderer = TraceRenderer::new(&tree, outcome.trace.as_ref().unwrap());
/// let first = renderer.frame(0);
/// assert!(first.contains("round 0"));
/// # Ok::<(), bfdn_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct TraceRenderer<'a> {
    tree: &'a Tree,
    trace: &'a Trace,
}

impl<'a> TraceRenderer<'a> {
    /// Creates a renderer for a trace recorded on `tree`.
    pub fn new(tree: &'a Tree, trace: &'a Trace) -> Self {
        TraceRenderer { tree, trace }
    }

    /// Number of renderable frames (one per recorded round).
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Returns `true` if the trace recorded no rounds.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Renders the state *after* round `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn frame(&self, index: usize) -> String {
        let record = &self.trace.records()[index];
        // A node is explored by round r if any robot stood on it at some
        // round ≤ r (the root is always explored).
        let mut explored = vec![false; self.tree.len()];
        explored[NodeId::ROOT.index()] = true;
        for rec in &self.trace.records()[..=index] {
            for &p in &rec.positions {
                explored[p.index()] = true;
            }
        }
        let mut out = format!("round {}:\n", record.round);
        let mut stack = vec![(NodeId::ROOT, 0usize)];
        while let Some((v, depth)) = stack.pop() {
            let robots: Vec<String> = record
                .positions
                .iter()
                .enumerate()
                .filter(|&(_, &p)| p == v)
                .map(|(i, _)| format!("r{i}"))
                .collect();
            let mark = if explored[v.index()] { 'o' } else { '?' };
            out.push_str(&"  ".repeat(depth));
            out.push(mark);
            if !robots.is_empty() {
                out.push_str(" [");
                out.push_str(&robots.join(" "));
                out.push(']');
            }
            out.push('\n');
            for &c in self.tree.children(v).iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }

    /// Renders every `stride`-th frame joined by blank lines — a cheap
    /// animation for documentation and debugging.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn animate(&self, stride: usize) -> String {
        assert!(stride > 0, "stride must be positive");
        (0..self.trace.len())
            .step_by(stride)
            .map(|i| self.frame(i))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Explorer, Move, RoundContext, Simulator};
    use bfdn_trees::generators;

    struct Dfs;
    impl Explorer for Dfs {
        fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
            for (pos, mv) in ctx.positions.iter().zip(out.iter_mut()) {
                *mv = match ctx.tree.dangling_ports(*pos).next() {
                    Some(p) => Move::Down(p),
                    None => Move::Up,
                };
            }
        }
    }

    fn traced(tree: &bfdn_trees::Tree, k: usize) -> Trace {
        let mut sim = Simulator::new(tree, k).record_trace();
        sim.run(&mut Dfs).unwrap().trace.unwrap()
    }

    #[test]
    fn frames_mark_progressive_exploration() {
        let tree = generators::path(3);
        let trace = traced(&tree, 1);
        let r = TraceRenderer::new(&tree, &trace);
        assert_eq!(r.len(), 6); // 2(n-1) rounds
        let first = r.frame(0);
        let last = r.frame(r.len() - 1);
        assert!(first.contains('?'), "unexplored nodes early: {first}");
        assert!(
            !last.contains('?'),
            "everything explored at the end: {last}"
        );
    }

    #[test]
    fn robots_are_listed_at_their_positions() {
        let tree = generators::star(2);
        let trace = traced(&tree, 2);
        let r = TraceRenderer::new(&tree, &trace);
        let f = r.frame(0);
        assert!(f.contains("[r0]") || f.contains("[r0 r1]"), "{f}");
    }

    #[test]
    fn animate_concatenates_frames() {
        let tree = generators::path(2);
        let trace = traced(&tree, 1);
        let r = TraceRenderer::new(&tree, &trace);
        let anim = r.animate(2);
        assert!(anim.matches("round").count() >= 2);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let tree = generators::path(1);
        let trace = traced(&tree, 1);
        TraceRenderer::new(&tree, &trace).animate(0);
    }
}
