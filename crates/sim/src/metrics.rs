//! Quantities measured during a simulation run.

use std::fmt;

/// Counters accumulated by the [`Simulator`](crate::Simulator) over a run.
///
/// All quantities are totals over the whole run; per-robot distances are
/// available through [`Metrics::distance_per_robot`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Metrics {
    /// Rounds elapsed.
    pub rounds: u64,
    /// Edge traversals actually performed (sum over robots).
    pub moves: u64,
    /// Robot-rounds spent not moving while allowed to move.
    pub idle: u64,
    /// Robot-rounds stalled by the movement adversary.
    pub stalled: u64,
    /// Allowed robot-rounds granted by the schedule (`Σ M_ti`), whether
    /// used or not — the quantity `k·A(M)` of Proposition 7.
    pub allowed_moves: u64,
    /// Dangling edges traversed for the first time (equals `n - 1` at the
    /// end of a complete exploration).
    pub edges_discovered: u64,
    /// Edge events in the sense of Section 5: first parent→child plus
    /// first child→parent traversals (at most `2(n-1)`).
    pub edge_events: u64,
    /// Distance travelled by each robot.
    distance: Vec<u64>,
}

impl Metrics {
    pub(crate) fn new(k: usize) -> Self {
        Metrics {
            distance: vec![0; k],
            ..Metrics::default()
        }
    }

    pub(crate) fn record_move(&mut self, robot: usize) {
        self.moves += 1;
        self.distance[robot] += 1;
    }

    /// Distance travelled by each robot.
    pub fn distance_per_robot(&self) -> &[u64] {
        &self.distance
    }

    /// Average allowed moves per robot, `A(M)` of Proposition 7.
    pub fn average_allowed(&self) -> f64 {
        if self.distance.is_empty() {
            0.0
        } else {
            self.allowed_moves as f64 / self.distance.len() as f64
        }
    }

    /// Total work `Σ_i (T_i¹ + T_i²) = k·T` sanity quantity: moves plus
    /// idle plus stalled robot-rounds.
    pub fn robot_rounds(&self) -> u64 {
        self.moves + self.idle + self.stalled
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} moves={} idle={} stalled={} allowed={} discovered={} edge_events={}",
            self.rounds,
            self.moves,
            self.idle,
            self.stalled,
            self.allowed_moves,
            self.edges_discovered,
            self.edge_events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_move_accumulates() {
        let mut m = Metrics::new(3);
        m.record_move(1);
        m.record_move(1);
        m.record_move(2);
        assert_eq!(m.moves, 3);
        assert_eq!(m.distance_per_robot(), &[0, 2, 1]);
    }

    #[test]
    fn average_allowed() {
        let mut m = Metrics::new(4);
        m.allowed_moves = 20;
        assert!((m.average_allowed() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn robot_rounds_sums_parts() {
        let mut m = Metrics::new(2);
        m.moves = 5;
        m.idle = 3;
        m.stalled = 2;
        assert_eq!(m.robot_rounds(), 10);
    }

    #[test]
    fn display_includes_every_counter() {
        let mut m = Metrics::new(1);
        m.rounds = 9;
        m.moves = 8;
        m.idle = 7;
        m.stalled = 6;
        m.allowed_moves = 5;
        m.edges_discovered = 4;
        m.edge_events = 3;
        assert_eq!(
            m.to_string(),
            "rounds=9 moves=8 idle=7 stalled=6 allowed=5 discovered=4 edge_events=3"
        );
    }
}
