//! Property-based tests of the simulation engine itself: arbitrary
//! explorers (random-walkers) must never corrupt the fog of war or the
//! metrics.

use bfdn_sim::{Explorer, Move, RoundContext, SimError, Simulator, StopCondition};
use bfdn_trees::{NodeId, Tree, TreeBuilder};
use proptest::prelude::*;

fn tree_from_choices(choices: &[usize]) -> Tree {
    let mut b = TreeBuilder::with_capacity(choices.len() + 1);
    for (i, &c) in choices.iter().enumerate() {
        b.add_child(NodeId::new(c % (i + 1)));
    }
    b.build()
}

/// An explorer driven by an arbitrary byte script: each robot each round
/// takes one of its legal moves, indexed by the next script byte.
struct ScriptedWalker {
    script: Vec<u8>,
    cursor: usize,
}

impl Explorer for ScriptedWalker {
    #[allow(clippy::needless_range_loop)]
    fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
        for i in 0..ctx.k() {
            let at = ctx.positions[i];
            let mut options: Vec<Move> = vec![Move::Stay, Move::Up];
            let deg = ctx.tree.degree(at);
            let first_down = usize::from(!at.is_root());
            for p in first_down..deg {
                options.push(Move::Down(bfdn_trees::Port::new(p)));
            }
            let b = *self.script.get(self.cursor).unwrap_or(&0);
            self.cursor += 1;
            out[i] = options[b as usize % options.len()];
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever a (legal) explorer does, the simulator's invariants hold:
    /// counters are consistent, positions stay on explored nodes, and
    /// edge events never exceed 2(n-1).
    #[test]
    fn random_walkers_never_corrupt_the_simulation(
        choices in prop::collection::vec(any::<usize>(), 1..80),
        script in prop::collection::vec(any::<u8>(), 0..3000),
        k in 1usize..6,
    ) {
        let tree = tree_from_choices(&choices);
        let budget = (script.len() / k.max(1)) as u64 + 1;
        let mut sim = Simulator::new(&tree, k).with_max_rounds(budget);
        let mut walker = ScriptedWalker { script, cursor: 0 };
        match sim.run_with(&mut walker, &mut bfdn_sim::AlwaysAllow, StopCondition::ExploredAndReturned) {
            Ok(outcome) => {
                prop_assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
                prop_assert_eq!(outcome.metrics.robot_rounds(), outcome.rounds * k as u64);
            }
            Err(SimError::RoundLimit { explored, total, .. }) => {
                prop_assert!(explored <= total);
            }
            Err(e) => {
                // The walker only offers legal moves; anything but a
                // round limit is a bug.
                return Err(TestCaseError::fail(format!("unexpected {e}")));
            }
        }
        // Invariants that hold either way:
        prop_assert!(sim.partial().validate().is_ok());
        for &p in sim.positions() {
            prop_assert!(sim.partial().is_explored(p), "robot on unexplored node");
        }
        // The fog of war is a faithful subgraph of the ground truth.
        let pt = sim.partial();
        prop_assert!(pt.num_explored() >= 1 && pt.num_explored() <= tree.len());
        for &v in pt.explored_nodes() {
            prop_assert_eq!(pt.depth(v), tree.node_depth(v));
            prop_assert_eq!(pt.parent(v), tree.parent(v));
            prop_assert_eq!(pt.degree(v), tree.degree(v));
        }
    }
}

#[test]
fn partial_view_never_exceeds_ground_truth() {
    // A deterministic deep walk on a comb, checking the fog of war stays
    // a subgraph of the ground truth at every step.
    let tree = bfdn_trees::generators::comb(10, 3);
    let script: Vec<u8> = (0..2000u32).map(|i| (i * 7 % 251) as u8).collect();
    let mut sim = Simulator::new(&tree, 2).with_max_rounds(500);
    let mut walker = ScriptedWalker { script, cursor: 0 };
    let _ = sim.run_with(
        &mut walker,
        &mut bfdn_sim::AlwaysAllow,
        StopCondition::ExploredAndReturned,
    );
    let pt = sim.partial();
    for v in tree.node_ids() {
        if pt.is_explored(v) {
            assert_eq!(pt.depth(v), tree.node_depth(v));
            assert_eq!(pt.parent(v), tree.parent(v));
            assert_eq!(pt.degree(v), tree.degree(v));
        }
    }
}
