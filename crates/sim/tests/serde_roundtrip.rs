//! Round-trip tests for the optional serde support (run with
//! `cargo test -p bfdn-sim --features serde`).

#![cfg(feature = "serde")]

use bfdn_sim::{explore, Explorer, Metrics, Move, RoundContext, RoundRecord, Simulator, Trace};
use bfdn_trees::generators;

struct Dfs;
impl Explorer for Dfs {
    fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
        let at = ctx.positions[0];
        out[0] = match ctx.tree.dangling_ports(at).next() {
            Some(p) => Move::Down(p),
            None => Move::Up,
        };
    }
}

/// The workspace deliberately has no JSON dependency, so — like the
/// sibling test in `bfdn-trees` — round-trips go through serde's
/// self-describing value tree rather than a format crate.
#[test]
fn serde_traits_are_derived() {
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    assert_serde::<Metrics>();
    assert_serde::<Trace>();
    assert_serde::<RoundRecord>();
    assert_serde::<Move>();
}

#[test]
fn traced_run_survives_a_clone() {
    // Structural sanity that the serde-annotated types still behave: a
    // recorded trace clones into an equal trace with the same lazily
    // built first-visit index.
    let tree = generators::comb(4, 2);
    let mut sim = Simulator::new(&tree, 1).record_trace();
    let outcome = sim.run(&mut Dfs).unwrap();
    let trace = outcome.trace.unwrap();
    let copy = trace.clone();
    assert_eq!(trace, copy);
    assert_eq!(trace.first_visits(), copy.first_visits());

    let plain = explore(&tree, 1, &mut Dfs).unwrap();
    assert_eq!(plain.metrics.clone(), plain.metrics);
}

#[test]
fn traced_run_round_trips_through_serde_values() {
    let tree = generators::comb(4, 2);
    let mut sim = Simulator::new(&tree, 1).record_trace();
    let outcome = sim.run(&mut Dfs).unwrap();
    let trace = outcome.trace.unwrap();

    let v = serde::to_value(&trace);
    assert_ne!(v, serde::Value::Unit, "a trace must serialize to real data");
    let restored: Trace = serde::from_value(&v).expect("trace deserializes");
    assert_eq!(trace, restored);
    assert_eq!(trace.first_visits(), restored.first_visits());

    let plain = explore(&tree, 1, &mut Dfs).unwrap();
    let mv = serde::to_value(&plain.metrics);
    let metrics: Metrics = serde::from_value(&mv).expect("metrics deserialize");
    assert_eq!(plain.metrics, metrics);
}
