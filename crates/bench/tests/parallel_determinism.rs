//! The parallel harness must be invisible in the output: two runs of
//! the same experiment — whatever the thread count or scheduling — must
//! produce byte-identical CSVs, and a multi-threaded run must match the
//! single-threaded (sequential-order) run exactly. This is what keeps
//! the committed `EXPERIMENTS.md` numbers valid under parallelism.

use bfdn_bench::{experiments as ex, Scale};

/// Runs every experiment except E2 (by far the slowest) once and
/// returns (id, csv) pairs.
fn suite_csvs() -> Vec<(&'static str, String)> {
    vec![
        ("e1", ex::e1_theorem1_bound(Scale::Quick).to_csv()),
        ("e3", ex::e3_urn_game(Scale::Quick).to_csv()),
        ("e4", ex::e4_lemma2_reanchors(Scale::Quick).to_csv()),
        ("e5", ex::e5_figure1(Scale::Quick).shares.to_csv()),
        ("e6", ex::e6_cte_adversarial(Scale::Quick).to_csv()),
        ("e7", ex::e7_write_read(Scale::Quick).to_csv()),
        ("e8", ex::e8_breakdowns(Scale::Quick).to_csv()),
        ("e9", ex::e9_graphs(Scale::Quick).to_csv()),
        ("e10", ex::e10_recursive(Scale::Quick).to_csv()),
        ("e11", ex::e11_allocation(Scale::Quick).to_csv()),
        ("e12", ex::e12_ratio_curves(Scale::Quick).to_csv()),
        ("e13", ex::e13_statistics(Scale::Quick).to_csv()),
        ("ablations", ex::a1_ablations(Scale::Quick).to_csv()),
    ]
}

#[test]
fn two_parallel_suite_runs_are_byte_identical() {
    // Force several workers even on single-core CI machines, so the
    // atomic work queue actually interleaves between the two runs.
    std::env::set_var("BFDN_THREADS", "4");
    let first = suite_csvs();
    let second = suite_csvs();
    for ((id, a), (_, b)) in first.iter().zip(second.iter()) {
        assert_eq!(a, b, "{id}: two parallel runs diverged");
    }
}

#[test]
fn parallel_run_matches_the_sequential_order() {
    // E2 is the most expensive experiment; keep this test to a couple
    // of representative experiments so the suite stays quick.
    std::env::set_var("BFDN_THREADS", "1");
    let seq = [
        ("e1", ex::e1_theorem1_bound(Scale::Quick).to_csv()),
        ("e8", ex::e8_breakdowns(Scale::Quick).to_csv()),
        ("e13", ex::e13_statistics(Scale::Quick).to_csv()),
    ];
    std::env::set_var("BFDN_THREADS", "4");
    let par = [
        ("e1", ex::e1_theorem1_bound(Scale::Quick).to_csv()),
        ("e8", ex::e8_breakdowns(Scale::Quick).to_csv()),
        ("e13", ex::e13_statistics(Scale::Quick).to_csv()),
    ];
    for ((id, s), (_, p)) in seq.iter().zip(par.iter()) {
        assert_eq!(s, p, "{id}: parallel output diverged from sequential");
    }
}
