//! The acceptance tests of the cluster serving path: a sweep routed
//! through a 3-shard cluster produces the byte-identical CSV of a local
//! (and single-daemon) run, a cold spec missed on one shard is filled
//! from a peer's cache without re-execution, and killing a shard
//! mid-sequence re-routes its keys without changing a byte.

use bfdn_bench::{sweep, Scale};
use bfdn_cluster::{ClusterClient, ClusterConfig};
use bfdn_service::client::Client;
use bfdn_service::protocol::ExploreSpec;
use bfdn_service::server::{serve, ServerConfig, ServerHandle};
use std::net::TcpListener;
use std::time::Duration;

/// Reserves `count` distinct loopback ports by binding and dropping
/// listeners — the daemons then bind those exact ports, so every
/// shard's peer list can be written down before any shard starts.
fn reserve_ports(count: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..count)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").port())
        .collect()
}

/// Starts `count` daemons that list each other as peers.
fn start_cluster(count: usize) -> (Vec<String>, Vec<ServerHandle>) {
    let ports = reserve_ports(count);
    let addrs: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let handles = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let peers: Vec<String> = addrs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| a.clone())
                .collect();
            serve(ServerConfig {
                addr: addr.clone(),
                peers,
                ..ServerConfig::default()
            })
            .expect("bind shard")
        })
        .collect();
    (addrs, handles)
}

/// The value of a Prometheus series in a text exposition, matched on
/// the full series name (with labels, if any).
fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("series `{name}` not in exposition"))
}

#[test]
fn cold_spec_is_filled_from_a_peer_cache_without_reexecution() {
    let (addrs, handles) = start_cluster(2);
    // Off the sweep grid, so nothing else ever caches it.
    let spec = ExploreSpec::new("bfdn", "comb", 300, 4, 999);
    let local = bfdn_service::exec::run_spec(&spec).expect("local run").0;

    // Warm shard B by executing there, then ask shard A cold: A must
    // answer by copying B's cached result, not by re-executing.
    let mut b = Client::connect(&addrs[1]).expect("connect B");
    b.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let executed = b.explore(spec.clone()).expect("execute on B");
    assert!(!executed.cached, "first run is a miss on B");

    let mut a = Client::connect(&addrs[0]).expect("connect A");
    a.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let filled = a.explore(spec.clone()).expect("peer-filled on A");
    assert!(filled.cached, "A served a cached copy");
    assert_eq!(
        filled.payload_json(),
        local.payload_json(),
        "the peer-filled payload is byte-identical to a local run"
    );

    // A's own accounting: one peer-fill hit, zero executions.
    let text = a.metrics().expect("A metrics");
    assert_eq!(metric(&text, "bfdn_peer_fill_hit_total"), 1.0);
    assert_eq!(metric(&text, "bfdn_request_execute_seconds_count"), 0.0);
    // Trust-but-verify: A re-checked the Theorem 1 bound on the copy.
    assert_eq!(metric(&text, "bfdn_bound_checked_total"), 1.0);
    assert_eq!(metric(&text, "bfdn_bound_violations_total"), 0.0);
    // B executed exactly once — after its own cold-path probe of A came
    // back empty (that probe is B's one peer-fill miss).
    let text = b.metrics().expect("B metrics");
    assert_eq!(metric(&text, "bfdn_request_execute_seconds_count"), 1.0);
    assert_eq!(metric(&text, "bfdn_peer_fill_miss_total"), 1.0);

    for (addr, handle) in addrs.iter().zip(handles) {
        Client::connect(addr)
            .and_then(|mut c| c.shutdown())
            .expect("shutdown");
        handle.join().expect("clean drain");
    }
}

#[test]
fn quick_sweep_via_cluster_is_byte_identical_and_survives_a_shard_kill() {
    let (addrs, mut handles) = start_cluster(3);
    let specs = sweep::standard_specs(Scale::Quick);
    let local_csv = sweep::results_table(&sweep::run_local(&specs).expect("local sweep")).to_csv();

    // Reference single daemon: the wire path the cluster must match.
    let single = serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    })
    .expect("bind single daemon");
    let (via_service, _, _) = sweep::run_via_service(&single.addr().to_string(), specs.clone())
        .expect("single-daemon sweep");
    assert_eq!(sweep::results_table(&via_service).to_csv(), local_csv);
    Client::connect(single.addr())
        .and_then(|mut c| c.shutdown())
        .expect("shutdown single");
    single.join().expect("drain single");

    // Cold cluster pass: every spec is computed exactly once, somewhere.
    let (cold, hits, misses) =
        sweep::run_via_cluster(&addrs, specs.clone()).expect("cold cluster sweep");
    assert_eq!((hits, misses), (0, specs.len() as u64));
    assert_eq!(
        sweep::results_table(&cold).to_csv(),
        local_csv,
        "the cluster must not change a single byte of the sweep CSV"
    );

    // Warm pass: each home shard answers its keys from its own cache.
    let (warm, hits, misses) =
        sweep::run_via_cluster(&addrs, specs.clone()).expect("warm cluster sweep");
    assert_eq!((hits, misses), (specs.len() as u64, 0));
    assert!(warm.iter().all(|r| r.cached));
    assert_eq!(sweep::results_table(&warm).to_csv(), local_csv);

    // Kill one shard for good, then re-run with the full (stale) shard
    // list: the client must fail over around the corpse by the ring's
    // minimal-remap property, still byte-identical.
    Client::connect(&addrs[2])
        .and_then(|mut c| c.shutdown())
        .expect("shutdown shard 2");
    handles
        .pop()
        .expect("shard 2 handle")
        .join()
        .expect("drain");

    let mut config = ClusterConfig::new(addrs.iter().cloned());
    config.jitter_seed = 7;
    let mut client = ClusterClient::new(config);
    let (rerouted, hits, misses) = client.batch(&specs).expect("sweep around dead shard");
    assert_eq!(hits + misses, specs.len() as u64);
    assert_eq!(
        sweep::results_table(&rerouted).to_csv(),
        local_csv,
        "failover must not change results"
    );
    assert!(
        client.reroutes() > 0,
        "the dead shard's keys were re-routed"
    );
    assert!(
        hits > 0,
        "surviving shards still answer their own keys from cache"
    );

    for (addr, handle) in addrs.iter().take(2).zip(handles) {
        Client::connect(addr)
            .and_then(|mut c| c.shutdown())
            .expect("shutdown");
        handle.join().expect("clean drain");
    }
}
