//! The acceptance test of the serving path: a sweep routed through a
//! live `bfdn-serve` daemon produces the byte-identical CSV of a local
//! run, and re-issuing the batch answers entirely from the
//! content-addressed cache.

use bfdn_bench::{sweep, Scale};
use bfdn_service::client::Client;
use bfdn_service::server::{serve, ServerConfig};
use std::time::Duration;

#[test]
fn quick_sweep_via_service_is_byte_identical_and_cached_on_reissue() {
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.addr().to_string();

    let specs = sweep::standard_specs(Scale::Quick);
    let local_csv = sweep::results_table(&sweep::run_local(&specs).expect("local sweep")).to_csv();

    // Cold pass: everything is simulated server-side.
    let (cold, hits, misses) =
        sweep::run_via_service(&addr, specs.clone()).expect("cold service sweep");
    assert_eq!((hits, misses), (0, specs.len() as u64));
    let cold_csv = sweep::results_table(&cold).to_csv();
    assert_eq!(
        cold_csv, local_csv,
        "the wire must not change a single byte of the sweep CSV"
    );

    // Warm pass: 100% cache hits, still byte-identical.
    let (warm, hits, misses) =
        sweep::run_via_service(&addr, specs.clone()).expect("warm service sweep");
    assert_eq!(
        (hits, misses),
        (specs.len() as u64, 0),
        "re-issued batch is answered entirely from the cache"
    );
    assert!(warm.iter().all(|r| r.cached));
    assert_eq!(sweep::results_table(&warm).to_csv(), local_csv);

    // The server's own accounting agrees.
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let cache = client.cache_stats().expect("cache stats");
    assert_eq!(cache.entries, specs.len() as u64);
    assert_eq!(cache.hits, specs.len() as u64);
    assert_eq!(cache.misses as usize, 2 * specs.len());

    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
}
