//! The experiment harness: one module per experiment of `DESIGN.md`'s
//! index (E1–E13 plus the A1 ablations), each regenerating a table that
//! `EXPERIMENTS.md` records. The `experiments` binary drives them; the
//! criterion benches under `benches/` measure wall-clock implementation
//! costs and the ablations; the `explore` binary runs one-off scenarios.
//!
//! Every experiment function is pure computation returning a [`Table`],
//! so the test-suite can assert on the same numbers the binary prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod sweep;
mod table;

pub use table::Table;

/// The deterministic work-sharing substrate. It moved into
/// [`bfdn_service`] (the server's batch fan-out runs on it too); this
/// re-export keeps `bfdn_bench::parallel` paths working.
pub use bfdn_service::parallel;

/// Scale knob shared by all experiments: `quick` keeps every run under a
/// couple of seconds (CI), `full` is the laptop-scale configuration the
/// committed `EXPERIMENTS.md` numbers come from, and `huge` extends the
/// bound-checking sweeps (E1, E12) to million-node instances with `k` up
/// to 4096 — the regime intra-round sharding (`BFDN_ROUND_THREADS`)
/// exists for. Experiments without a huge-specific configuration run
/// their full-scale one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small instances for CI and tests.
    Quick,
    /// The configuration reported in `EXPERIMENTS.md`.
    Full,
    /// Million-node instances for E1/E12 (see `EXPERIMENTS.md` §Huge
    /// scale); everything else falls back to full-scale sizes.
    Huge,
}

impl Scale {
    /// Scales a "full" size down in quick mode. Huge deliberately does
    /// NOT inflate generic sizes — only the experiments with an explicit
    /// huge configuration grow, so `--scale huge all` stays tractable.
    pub fn size(self, full: usize) -> usize {
        match self {
            Scale::Quick => (full / 8).max(32),
            Scale::Full | Scale::Huge => full,
        }
    }

    /// Parses the `--scale` CLI value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            "huge" => Some(Scale::Huge),
            _ => None,
        }
    }
}
