//! Run any exploration algorithm of the workspace on any workload:
//!
//! ```text
//! explore --family comb --n 2000 --k 16 --algo bfdn-l2 --seed 7
//! explore --family binary --n 30 --k 3 --algo bfdn --render
//! explore --algo bfdn --trace-out run.jsonl --manifest-out run.json --log debug
//! ```
//!
//! Flags: `--family` (see `bfdn_trees::generators::Family`), `--n`,
//! `--k`, `--algo` (bfdn, bfdn-robust, bfdn-shortcut, write-read,
//! bfdn-l2, bfdn-l3, cte), `--seed`, `--render`.
//!
//! Observability flags: `--trace-out PATH` streams one JSON object per
//! event (reanchors, edge discoveries, stalls, rounds, phase timings) to
//! `PATH`; `--manifest-out PATH` writes a run manifest (parameters, git
//! revision, wall-clock per phase, final metrics and Theorem 1 / Lemma 2
//! margins); `--log off|info|debug|trace` echoes events to stderr.

use bfdn_bench::cli::ExploreArgs;

fn main() {
    let args = match ExploreArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match args.run() {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("exploration failed: {e}");
            std::process::exit(1);
        }
    }
}
