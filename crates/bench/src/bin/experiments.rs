//! Regenerates every experiment of the reproduction (see `DESIGN.md`
//! for the index and `EXPERIMENTS.md` for the recorded outcomes).
//!
//! ```text
//! experiments [all|e1|e2|...|e13|ablations] [--quick] [--scale quick|full|huge]
//!             [--csv DIR] [--bench-json PATH]
//! ```
//!
//! Without arguments, runs everything at full (laptop) scale. `--quick`
//! (alias `--scale quick`) uses the CI-sized configuration;
//! `--scale huge` grows E1/E12 to million-node instances (see
//! `EXPERIMENTS.md` §Huge scale); `--csv DIR` additionally writes each
//! table as `DIR/<experiment>.csv` plus a run manifest
//! `DIR/<experiment>.manifest.json` (scale, git revision, wall-clock,
//! row count) so every results directory is self-describing;
//! `--bench-json PATH` records the per-experiment and total wall-clock
//! together with the worker-thread count (see `BFDN_THREADS`) and the
//! intra-round budget (see `BFDN_ROUND_THREADS`) for before/after
//! performance comparisons. Any other `-` flag is an error.
//!
//! Each experiment parallelizes its independent configurations
//! internally (`bfdn_bench::parallel`); tables and CSVs keep the
//! sequential row order byte-for-byte.

use bfdn_bench::{experiments as ex, parallel, Scale, Table};
use bfdn_obs::{git_revision, RunManifest};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Prints a table (optionally writing its CSV) and returns its row
/// count, so callers can aggregate without shared state.
fn emit(id: &str, t: &Table, csv_dir: Option<&Path>) -> u64 {
    println!("{t}");
    if let Some(dir) = csv_dir {
        let path = dir.join(format!("{id}.csv"));
        if let Err(e) = std::fs::write(&path, t.to_csv()) {
            eprintln!("failed to write {}: {e}", path.display());
        }
    }
    t.len() as u64
}

/// Writes `DIR/<id>.manifest.json` describing the experiment run that
/// just produced `DIR/<id>.csv`.
fn write_manifest(id: &str, scale: Scale, elapsed: Duration, rows: u64, dir: &Path) {
    let mut m = RunManifest::new(id, format!("{scale:?}").to_lowercase());
    m.metric(
        "wall_clock_ms",
        u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
    );
    m.metric("csv_rows", rows);
    m.metric("threads", parallel::num_threads() as u64);
    m.metric("round_threads", parallel::round_threads() as u64);
    let path = dir.join(format!("{id}.manifest.json"));
    if let Err(e) = m.write(&path) {
        eprintln!("failed to write {}: {e}", path.display());
    }
}

/// Runs one experiment; returns the number of CSV rows it produced, or
/// `None` for an unknown id.
fn run_one(id: &str, scale: Scale, csv_dir: Option<&Path>) -> Option<u64> {
    let rows = match id {
        "e1" => emit(id, &ex::e1_theorem1_bound(scale), csv_dir),
        "e2" => emit(id, &ex::e2_overhead_comparison(scale), csv_dir),
        "e3" => emit(id, &ex::e3_urn_game(scale), csv_dir),
        "e4" => emit(id, &ex::e4_lemma2_reanchors(scale), csv_dir),
        "e5" => {
            let fig = ex::e5_figure1(scale);
            let rows = emit(id, &fig.shares, csv_dir);
            for map in &fig.maps {
                println!("{map}");
            }
            rows
        }
        "e6" => emit(id, &ex::e6_cte_adversarial(scale), csv_dir),
        "e7" => emit(id, &ex::e7_write_read(scale), csv_dir),
        "e8" => emit(id, &ex::e8_breakdowns(scale), csv_dir),
        "e9" => emit(id, &ex::e9_graphs(scale), csv_dir),
        "e10" => emit(id, &ex::e10_recursive(scale), csv_dir),
        "e11" => emit(id, &ex::e11_allocation(scale), csv_dir),
        "e12" => emit(id, &ex::e12_ratio_curves(scale), csv_dir),
        "e13" => emit(id, &ex::e13_statistics(scale), csv_dir),
        "ablations" => emit(id, &ex::a1_ablations(scale), csv_dir),
        _ => return None,
    };
    Some(rows)
}

/// Consumes `--flag PATH` from `args`, returning the path when present.
fn take_path_flag(args: &mut Vec<String>, flag: &str) -> Option<PathBuf> {
    args.iter().position(|a| a == flag).map(|i| {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a path argument");
                std::process::exit(2);
            })
            .into();
        args.drain(i..=i + 1);
        path
    })
}

/// The timing record `--bench-json` writes: suite and per-experiment
/// wall-clock, plus everything needed to compare runs (git revision,
/// worker threads, scale).
struct BenchReport {
    scale: Scale,
    experiments: Vec<(String, Duration, u64)>,
    total: Duration,
}

impl BenchReport {
    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"git_revision\": {},\n",
            match git_revision() {
                Some(rev) => format!("\"{rev}\""),
                None => "null".into(),
            }
        ));
        out.push_str(&format!(
            "  \"scale\": \"{}\",\n",
            format!("{:?}", self.scale).to_lowercase()
        ));
        out.push_str(&format!("  \"threads\": {},\n", parallel::num_threads()));
        out.push_str(&format!(
            "  \"round_threads\": {},\n",
            parallel::round_threads()
        ));
        out.push_str(&format!(
            "  \"total_wall_clock_ms\": {},\n",
            self.total.as_millis()
        ));
        out.push_str("  \"experiments\": [\n");
        for (i, (id, elapsed, rows)) in self.experiments.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{id}\", \"wall_clock_ms\": {}, \"rows\": {rows}}}{}\n",
                elapsed.as_millis(),
                if i + 1 < self.experiments.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let mut scale = if quick { Scale::Quick } else { Scale::Full };
    if let Some(name) = take_path_flag(&mut args, "--scale") {
        let name = name.to_string_lossy();
        scale = Scale::parse(&name).unwrap_or_else(|| {
            eprintln!("bad --scale `{name}` (expected quick, full, or huge)");
            std::process::exit(2);
        });
    }
    let csv_dir = take_path_flag(&mut args, "--csv");
    let bench_json = take_path_flag(&mut args, "--bench-json");
    // Everything left must be an experiment id; a stray `-` flag is a
    // user error, not an id to silently ignore.
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        eprintln!(
            "unknown flag `{flag}` (expected --quick, --scale SCALE, --csv DIR, \
             or --bench-json PATH)"
        );
        std::process::exit(2);
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    let ids = args;
    let mut all: Vec<String> = (1..=13).map(|i| format!("e{i}")).collect();
    all.push("ablations".into());
    let selected = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        all
    } else {
        ids
    };
    let suite_start = std::time::Instant::now();
    let mut report = BenchReport {
        scale,
        experiments: Vec::new(),
        total: Duration::ZERO,
    };
    for id in &selected {
        let start = std::time::Instant::now();
        let Some(rows) = run_one(id, scale, csv_dir.as_deref()) else {
            eprintln!("unknown experiment `{id}` (expected e1..e13, ablations, or all)");
            std::process::exit(2);
        };
        let elapsed = start.elapsed();
        if let Some(dir) = &csv_dir {
            write_manifest(id, scale, elapsed, rows, dir);
        }
        report.experiments.push((id.clone(), elapsed, rows));
        eprintln!("[{id} done in {elapsed:.1?}]");
    }
    report.total = suite_start.elapsed();
    eprintln!(
        "[suite done in {:.1?} on {} thread(s)]",
        report.total,
        parallel::num_threads()
    );
    if let Some(path) = bench_json {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}
