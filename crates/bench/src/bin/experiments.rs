//! Regenerates every experiment of the reproduction (see `DESIGN.md`
//! for the index and `EXPERIMENTS.md` for the recorded outcomes).
//!
//! ```text
//! experiments [all|e1|e2|...|e11] [--quick]
//! ```
//!
//! Without arguments, runs everything at full (laptop) scale. `--quick`
//! uses the CI-sized configuration; `--csv DIR` additionally writes each
//! table as `DIR/<experiment>.csv` plus a run manifest
//! `DIR/<experiment>.manifest.json` (scale, git revision, wall-clock,
//! row count) so every results directory is self-describing.

use bfdn_bench::{experiments as ex, Scale, Table};
use bfdn_obs::RunManifest;
use std::path::Path;
use std::time::Duration;

fn emit(id: &str, t: &Table, csv_dir: Option<&Path>) {
    println!("{t}");
    if let Some(dir) = csv_dir {
        let path = dir.join(format!("{id}.csv"));
        if let Err(e) = std::fs::write(&path, t.to_csv()) {
            eprintln!("failed to write {}: {e}", path.display());
        }
        ROWS.with(|rows| rows.set(rows.get() + t.len() as u64));
    }
}

thread_local! {
    /// Rows written by the current experiment (an experiment may emit
    /// several tables, e.g. E5).
    static ROWS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Writes `DIR/<id>.manifest.json` describing the experiment run that
/// just produced `DIR/<id>.csv`.
fn write_manifest(id: &str, scale: Scale, elapsed: Duration, dir: &Path) {
    let mut m = RunManifest::new(id, format!("{scale:?}").to_lowercase());
    m.metric(
        "wall_clock_ms",
        u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
    );
    m.metric("csv_rows", ROWS.with(|rows| rows.replace(0)));
    let path = dir.join(format!("{id}.manifest.json"));
    if let Err(e) = m.write(&path) {
        eprintln!("failed to write {}: {e}", path.display());
    }
}

fn run_one(id: &str, scale: Scale, csv_dir: Option<&Path>) -> bool {
    match id {
        "e1" => emit(id, &ex::e1_theorem1_bound(scale), csv_dir),
        "e2" => emit(id, &ex::e2_overhead_comparison(scale), csv_dir),
        "e3" => emit(id, &ex::e3_urn_game(scale), csv_dir),
        "e4" => emit(id, &ex::e4_lemma2_reanchors(scale), csv_dir),
        "e5" => {
            let fig = ex::e5_figure1(scale);
            emit(id, &fig.shares, csv_dir);
            for map in &fig.maps {
                println!("{map}");
            }
        }
        "e6" => emit(id, &ex::e6_cte_adversarial(scale), csv_dir),
        "e7" => emit(id, &ex::e7_write_read(scale), csv_dir),
        "e8" => emit(id, &ex::e8_breakdowns(scale), csv_dir),
        "e9" => emit(id, &ex::e9_graphs(scale), csv_dir),
        "e10" => emit(id, &ex::e10_recursive(scale), csv_dir),
        "e11" => emit(id, &ex::e11_allocation(scale), csv_dir),
        "e12" => emit(id, &ex::e12_ratio_curves(scale), csv_dir),
        "e13" => emit(id, &ex::e13_statistics(scale), csv_dir),
        "ablations" => emit(id, &ex::a1_ablations(scale), csv_dir),
        _ => return false,
    }
    true
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let csv_dir: Option<std::path::PathBuf> = args.iter().position(|a| a == "--csv").map(|i| {
        let dir = args
            .get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--csv needs a directory argument");
                std::process::exit(2);
            })
            .into();
        args.drain(i..=i + 1);
        dir
    });
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    let ids: Vec<String> = args.into_iter().filter(|a| a != "--quick").collect();
    let mut all: Vec<String> = (1..=13).map(|i| format!("e{i}")).collect();
    all.push("ablations".into());
    let selected = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        all
    } else {
        ids
    };
    for id in &selected {
        let start = std::time::Instant::now();
        if !run_one(id, scale, csv_dir.as_deref()) {
            eprintln!("unknown experiment `{id}` (expected e1..e13, ablations, or all)");
            std::process::exit(2);
        }
        let elapsed = start.elapsed();
        if let Some(dir) = &csv_dir {
            write_manifest(id, scale, elapsed, dir);
        }
        eprintln!("[{id} done in {:.1?}]", elapsed);
    }
}
