//! Runs the standard sweep grid, locally or through a serving daemon.
//!
//! ```text
//! sweep [--quick|--huge] [--csv PATH] [--via-service ADDR]
//!       [--via-cluster ADDR1,ADDR2,...] [--loadgen-report PATH]
//! ```
//!
//! `--huge` appends the million-node single-instance requests to the
//! grid (see `EXPERIMENTS.md` §Huge scale) — through `--via-service`
//! each one is served as a single request the daemon parallelizes
//! internally via its `--round-threads` budget.
//!
//! `--via-cluster` routes the grid through a shard cluster instead of a
//! single daemon: specs split by home shard on the consistent-hash
//! ring, per-shard batches, results reassembled in request order.
//!
//! The printed table (and `--csv` file) is byte-identical whether the
//! sweep runs in-process, via `--via-service`, or via `--via-cluster` —
//! re-running against a warm daemon answers entirely from its result
//! cache. The hit/miss
//! split reported by the server goes to stderr. `--loadgen-report`
//! points at a `bfdn-load --report-json` file; its verdict and
//! per-class quantiles are summarised to stderr next to the sweep, so
//! one invocation shows the correctness grid and how the same daemon
//! held up under load.

use bfdn_bench::{sweep, Scale};
use std::path::PathBuf;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let huge = args.iter().any(|a| a == "--huge");
    args.retain(|a| a != "--huge");
    let scale = match (quick, huge) {
        (true, true) => {
            eprintln!("--quick and --huge are mutually exclusive");
            std::process::exit(2);
        }
        (true, false) => Scale::Quick,
        (false, true) => Scale::Huge,
        (false, false) => Scale::Full,
    };
    let take = |args: &mut Vec<String>, flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            let value = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            });
            args.drain(i..=i + 1);
            value
        })
    };
    let csv = take(&mut args, "--csv").map(PathBuf::from);
    let via_service = take(&mut args, "--via-service");
    let via_cluster = take(&mut args, "--via-cluster");
    let loadgen_report = take(&mut args, "--loadgen-report").map(PathBuf::from);
    if let Some(stray) = args.first() {
        eprintln!(
            "unknown argument `{stray}` (expected --quick, --huge, --csv PATH, \
             --via-service ADDR, --via-cluster ADDRS, --loadgen-report PATH)"
        );
        std::process::exit(2);
    }
    if via_service.is_some() && via_cluster.is_some() {
        eprintln!("--via-service and --via-cluster are mutually exclusive");
        std::process::exit(2);
    }

    let specs = sweep::standard_specs(scale);
    let results = if let Some(list) = &via_cluster {
        let shards: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        match sweep::run_via_cluster(&shards, specs) {
            Ok((results, hits, misses)) => {
                eprintln!(
                    "[served by {}-shard cluster: hits={hits} misses={misses}]",
                    shards.len()
                );
                results
            }
            Err(e) => {
                eprintln!("sweep: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match &via_service {
            Some(addr) => match sweep::run_via_service(addr, specs) {
                Ok((results, hits, misses)) => {
                    eprintln!("[served by {addr}: hits={hits} misses={misses}]");
                    match sweep::service_telemetry_summary(addr) {
                        Ok(summary) => {
                            eprintln!("[server telemetry]");
                            for line in summary.lines() {
                                eprintln!("  {line}");
                            }
                        }
                        Err(e) => eprintln!("[server telemetry unavailable: {e}]"),
                    }
                    results
                }
                Err(e) => {
                    eprintln!("sweep: {e}");
                    std::process::exit(1);
                }
            },
            None => match sweep::run_local(&specs) {
                Ok(results) => results,
                Err(e) => {
                    eprintln!("sweep: {e}");
                    std::process::exit(1);
                }
            },
        }
    };
    if let Some(path) = &loadgen_report {
        match std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))
            .and_then(|text| sweep::loadgen_report_summary(&text))
        {
            Ok(summary) => {
                eprintln!("[loadgen report {}]", path.display());
                for line in summary.lines() {
                    eprintln!("  {line}");
                }
            }
            Err(e) => {
                eprintln!("sweep: --loadgen-report: {e}");
                std::process::exit(1);
            }
        }
    }
    let table = sweep::results_table(&results);
    println!("{table}");
    if let Some(path) = csv {
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
