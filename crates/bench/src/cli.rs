//! Argument parsing and execution for the `explore` binary: run any
//! algorithm of the workspace on any workload family from the command
//! line. Hand-rolled flag parsing — the workspace deliberately carries
//! no CLI dependency.

use bfdn::{Bfdn, BfdnL, WriteReadBfdn};
use bfdn_baselines::{Cte, OnlineDfs};
use bfdn_sim::{Explorer, Simulator};
use bfdn_trees::generators::Family;
use bfdn_trees::Tree;
use rand::SeedableRng;
use std::fmt;

/// A parsed `explore` invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct ExploreArgs {
    /// Workload family (any [`Family`] name).
    pub family: Family,
    /// Approximate node count.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Algorithm name (see [`ExploreArgs::ALGORITHMS`]).
    pub algo: String,
    /// RNG seed for the randomized families.
    pub seed: u64,
    /// Render an ASCII animation (small trees only).
    pub render: bool,
}

/// Errors of [`ExploreArgs::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

impl Default for ExploreArgs {
    fn default() -> Self {
        ExploreArgs {
            family: Family::RandomRecursive,
            n: 1000,
            k: 8,
            algo: "bfdn".into(),
            seed: 42,
            render: false,
        }
    }
}

impl ExploreArgs {
    /// The accepted `--algo` values.
    pub const ALGORITHMS: [&'static str; 8] = [
        "bfdn",
        "bfdn-robust",
        "bfdn-shortcut",
        "write-read",
        "bfdn-l2",
        "bfdn-l3",
        "cte",
        "dfs",
    ];

    /// Parses `--family F --n N --k K --algo A --seed S [--render]`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first unknown flag,
    /// missing value, unknown family/algorithm, or malformed number.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ParseError> {
        let mut out = ExploreArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| ParseError(format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--family" => {
                    let v = value("--family")?;
                    out.family =
                        Family::ALL
                            .into_iter()
                            .find(|f| f.name() == v)
                            .ok_or_else(|| {
                                ParseError(format!(
                                    "unknown family `{v}` (one of: {})",
                                    Family::ALL.map(|f| f.name()).join(", ")
                                ))
                            })?;
                }
                "--n" => {
                    let v = value("--n")?;
                    out.n = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --n `{v}`")))?;
                }
                "--k" => {
                    let v = value("--k")?;
                    out.k = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --k `{v}`")))?;
                    if out.k == 0 {
                        return Err(ParseError("--k must be at least 1".into()));
                    }
                }
                "--algo" => {
                    let v = value("--algo")?;
                    if !Self::ALGORITHMS.contains(&v.as_str()) {
                        return Err(ParseError(format!(
                            "unknown algorithm `{v}` (one of: {})",
                            Self::ALGORITHMS.join(", ")
                        )));
                    }
                    out.algo = v;
                }
                "--seed" => {
                    let v = value("--seed")?;
                    out.seed = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --seed `{v}`")))?;
                }
                "--render" => out.render = true,
                other => {
                    return Err(ParseError(format!(
                        "unknown flag `{other}` (try --family --n --k --algo --seed --render)"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Builds the workload tree.
    pub fn build_tree(&self) -> Tree {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.family.instance(self.n, &mut rng)
    }

    /// Instantiates the chosen explorer.
    ///
    /// # Panics
    ///
    /// Panics if `algo` was not validated by [`ExploreArgs::parse`].
    pub fn build_explorer(&self) -> Box<dyn Explorer> {
        match self.algo.as_str() {
            "bfdn" => Box::new(Bfdn::new(self.k)),
            "bfdn-robust" => Box::new(Bfdn::new_robust(self.k)),
            "bfdn-shortcut" => Box::new(Bfdn::builder(self.k).shortcut(true).build()),
            "write-read" => Box::new(WriteReadBfdn::new(self.k)),
            "bfdn-l2" => Box::new(BfdnL::new(self.k, 2)),
            "bfdn-l3" => Box::new(BfdnL::new(self.k, 3)),
            "cte" => Box::new(Cte::new(self.k)),
            "dfs" => Box::new(OnlineDfs),
            other => panic!("unvalidated algorithm `{other}`"),
        }
    }

    /// Runs the exploration and returns a human-readable report.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors as strings.
    pub fn run(&self) -> Result<String, String> {
        let tree = self.build_tree();
        let mut explorer = self.build_explorer();
        let mut sim = Simulator::new(&tree, self.k);
        if self.render {
            sim = sim.record_trace();
        }
        let outcome = sim.run(explorer.as_mut()).map_err(|e| e.to_string())?;
        let bound = bfdn::theorem1_bound(tree.len(), tree.depth(), self.k, tree.max_degree());
        let mut report = String::new();
        if let Some(trace) = &outcome.trace {
            let renderer = bfdn_sim::render::TraceRenderer::new(&tree, trace);
            let stride = (trace.len() / 8).max(1);
            report.push_str(&renderer.animate(stride));
            report.push('\n');
        }
        report.push_str(&format!(
            "{} on {} (seed {}): {} rounds with k={} \
             ({} edges discovered, {} edge events, Theorem 1 envelope {:.0})\n",
            self.algo,
            tree,
            self.seed,
            outcome.rounds,
            self.k,
            outcome.metrics.edges_discovered,
            outcome.metrics.edge_events,
            bound,
        ));
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExploreArgs, ParseError> {
        ExploreArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_parse_empty() {
        assert_eq!(parse(&[]).unwrap(), ExploreArgs::default());
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&[
            "--family", "comb", "--n", "500", "--k", "12", "--algo", "cte", "--seed", "7",
            "--render",
        ])
        .unwrap();
        assert_eq!(a.family.name(), "comb");
        assert_eq!((a.n, a.k, a.seed), (500, 12, 7));
        assert_eq!(a.algo, "cte");
        assert!(a.render);
    }

    #[test]
    fn rejects_unknowns() {
        assert!(parse(&["--algo", "quantum"]).is_err());
        assert!(parse(&["--family", "nope"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--n"]).is_err());
        assert!(parse(&["--k", "0"]).is_err());
        assert!(parse(&["--n", "many"]).is_err());
    }

    #[test]
    fn every_advertised_algorithm_runs() {
        for algo in ExploreArgs::ALGORITHMS {
            let args = ExploreArgs {
                n: 60,
                k: 4,
                algo: algo.into(),
                ..ExploreArgs::default()
            };
            let report = args.run().unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(report.contains("rounds"), "{algo}: {report}");
        }
    }

    #[test]
    fn render_produces_frames() {
        let args = ExploreArgs {
            family: Family::Comb,
            n: 12,
            k: 2,
            render: true,
            ..ExploreArgs::default()
        };
        let report = args.run().unwrap();
        assert!(report.contains("round 0:"));
    }
}
