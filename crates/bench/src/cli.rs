//! Argument parsing and execution for the `explore` binary: run any
//! algorithm of the workspace on any workload family from the command
//! line. Hand-rolled flag parsing — the workspace deliberately carries
//! no CLI dependency.

use bfdn_obs::{
    BoundConfig, BoundTracker, Event, EventSink, JsonlSink, LogLevel, Phases, RunManifest,
    StderrLog,
};
use bfdn_sim::{Explorer, Outcome, Simulator};
use bfdn_trees::generators::Family;
use bfdn_trees::Tree;
use rand::SeedableRng;
use std::fmt;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

/// A parsed `explore` invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct ExploreArgs {
    /// Workload family (any [`Family`] name).
    pub family: Family,
    /// Approximate node count.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Algorithm name (see [`ExploreArgs::ALGORITHMS`]).
    pub algo: String,
    /// RNG seed for the randomized families.
    pub seed: u64,
    /// Render an ASCII animation (small trees only).
    pub render: bool,
    /// Stream a JSONL event trace to this path (`--trace-out`).
    pub trace_out: Option<PathBuf>,
    /// Write a run manifest to this path (`--manifest-out`).
    pub manifest_out: Option<PathBuf>,
    /// Log events to stderr at this level (`--log`).
    pub log: LogLevel,
}

/// Errors of [`ExploreArgs::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

impl Default for ExploreArgs {
    fn default() -> Self {
        ExploreArgs {
            family: Family::RandomRecursive,
            n: 1000,
            k: 8,
            algo: "bfdn".into(),
            seed: 42,
            render: false,
            trace_out: None,
            manifest_out: None,
            log: LogLevel::Off,
        }
    }
}

/// The sink composition of one observed CLI run: an optional JSONL
/// trace, live bound margins, and an optional stderr log. Held by value
/// (not boxed in a `FanOut`) so the tracker and event counts can be read
/// back for the manifest after the run.
struct CliSink {
    jsonl: Option<JsonlSink<BufWriter<File>>>,
    tracker: BoundTracker,
    log: StderrLog,
}

impl EventSink for CliSink {
    fn emit(&mut self, event: &Event) {
        if let Some(jsonl) = &mut self.jsonl {
            jsonl.emit(event);
        }
        self.tracker.emit(event);
        self.log.emit(event);
    }

    fn flush(&mut self) {
        if let Some(jsonl) = &mut self.jsonl {
            jsonl.flush();
        }
    }
}

impl ExploreArgs {
    /// The accepted `--algo` values — the service crate's registry, so
    /// the CLI and the serving daemon can never drift apart.
    pub const ALGORITHMS: [&'static str; 8] = bfdn_service::exec::ALGORITHMS;

    /// Parses `--family F --n N --k K --algo A --seed S [--render]
    /// [--trace-out PATH] [--manifest-out PATH] [--log LEVEL]`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first unknown flag,
    /// missing value, unknown family/algorithm/level, or malformed
    /// number.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ParseError> {
        let mut out = ExploreArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| ParseError(format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--family" => {
                    let v = value("--family")?;
                    out.family =
                        Family::ALL
                            .into_iter()
                            .find(|f| f.name() == v)
                            .ok_or_else(|| {
                                ParseError(format!(
                                    "unknown family `{v}` (one of: {})",
                                    Family::ALL.map(|f| f.name()).join(", ")
                                ))
                            })?;
                }
                "--n" => {
                    let v = value("--n")?;
                    out.n = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --n `{v}`")))?;
                }
                "--k" => {
                    let v = value("--k")?;
                    out.k = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --k `{v}`")))?;
                    if out.k == 0 {
                        return Err(ParseError("--k must be at least 1".into()));
                    }
                }
                "--algo" => {
                    let v = value("--algo")?;
                    if !Self::ALGORITHMS.contains(&v.as_str()) {
                        return Err(ParseError(format!(
                            "unknown algorithm `{v}` (one of: {})",
                            Self::ALGORITHMS.join(", ")
                        )));
                    }
                    out.algo = v;
                }
                "--seed" => {
                    let v = value("--seed")?;
                    out.seed = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --seed `{v}`")))?;
                }
                "--render" => out.render = true,
                "--trace-out" => out.trace_out = Some(PathBuf::from(value("--trace-out")?)),
                "--manifest-out" => {
                    out.manifest_out = Some(PathBuf::from(value("--manifest-out")?))
                }
                "--log" => {
                    let v = value("--log")?;
                    out.log = v.parse().map_err(ParseError)?;
                }
                other => {
                    return Err(ParseError(format!(
                        "unknown flag `{other}` (try --family --n --k --algo --seed --render \
                         --trace-out --manifest-out --log)"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Builds the workload tree.
    pub fn build_tree(&self) -> Tree {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.family.instance(self.n, &mut rng)
    }

    /// Instantiates the chosen explorer via the shared registry.
    ///
    /// # Panics
    ///
    /// Panics if `algo` was not validated by [`ExploreArgs::parse`].
    pub fn build_explorer(&self) -> Box<dyn Explorer> {
        bfdn_service::exec::build_explorer(&self.algo, self.k)
            .unwrap_or_else(|| panic!("unvalidated algorithm `{}`", self.algo))
    }

    /// Whether any observability flag is set. Unobserved runs take the
    /// plain [`Simulator`] path, whose sink is the compiled-out
    /// [`bfdn_obs::NullSink`].
    fn observing(&self) -> bool {
        self.trace_out.is_some() || self.manifest_out.is_some() || self.log > LogLevel::Off
    }

    /// Runs the exploration and returns a human-readable report.
    ///
    /// # Errors
    ///
    /// Propagates simulator and observability I/O errors as strings.
    pub fn run(&self) -> Result<String, String> {
        let mut explorer = self.build_explorer();
        if !self.observing() {
            let tree = self.build_tree();
            let outcome = self.simulate_plain(&tree, explorer.as_mut())?;
            return Ok(self.report(&tree, &outcome));
        }

        let mut phases = Phases::default();
        let tree = phases.time("build_tree", || self.build_tree());
        let jsonl = match &self.trace_out {
            Some(path) => Some(
                JsonlSink::create(path)
                    .map_err(|e| format!("cannot create {}: {e}", path.display()))?,
            ),
            None => None,
        };
        let sink = CliSink {
            jsonl,
            tracker: BoundTracker::new(BoundConfig {
                rounds: Some(bfdn::theorem1_bound(
                    tree.len(),
                    tree.depth(),
                    self.k,
                    tree.max_degree(),
                )),
                reanchors_per_depth: Some(bfdn::lemma2_bound(self.k, tree.max_degree())),
                urn_steps: None,
            }),
            log: StderrLog::new(self.log),
        };
        let mut sim = Simulator::new(&tree, self.k).with_sink(sink);
        if self.render {
            sim = sim.record_trace();
        }
        let outcome = phases
            .time("explore", || sim.run(explorer.as_mut()))
            .map_err(|e| e.to_string())?;
        let mut sink = sim.into_sink();
        phases.emit(&mut sink);
        sink.flush();

        let events_emitted = match sink.jsonl {
            Some(jsonl) => {
                let events = jsonl.events();
                jsonl
                    .finish()
                    .map_err(|e| format!("trace write failed: {e}"))?;
                events
            }
            None => 0,
        };
        let mut report = self.report(&tree, &outcome);
        if let Some(path) = &self.manifest_out {
            let manifest = self.manifest(&tree, &outcome, &phases, &sink.tracker, events_emitted);
            manifest
                .write(path)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            report.push_str(&format!("manifest: {}\n", path.display()));
        }
        if let Some(path) = &self.trace_out {
            report.push_str(&format!(
                "trace: {} ({events_emitted} events)\n",
                path.display()
            ));
        }
        if !sink.tracker.all_non_negative() {
            report.push_str("WARNING: a bound margin went negative during the run\n");
        }
        Ok(report)
    }

    fn simulate_plain(&self, tree: &Tree, explorer: &mut dyn Explorer) -> Result<Outcome, String> {
        let mut sim = Simulator::new(tree, self.k);
        if self.render {
            sim = sim.record_trace();
        }
        sim.run(explorer).map_err(|e| e.to_string())
    }

    /// The run manifest of an observed invocation: instance parameters,
    /// git revision, phase wall-clock, final counters and final margins.
    fn manifest(
        &self,
        tree: &Tree,
        outcome: &Outcome,
        phases: &Phases,
        tracker: &BoundTracker,
        events_emitted: u64,
    ) -> RunManifest {
        let mut m = RunManifest::new(&self.algo, self.family.name());
        m.seed = self.seed;
        m.n = tree.len() as u64;
        m.depth = tree.depth() as u64;
        m.max_degree = tree.max_degree() as u64;
        m.k = self.k as u64;
        m.set_phases(phases);
        m.metric("rounds", outcome.rounds)
            .metric("moves", outcome.metrics.moves)
            .metric("idle", outcome.metrics.idle)
            .metric("stalled", outcome.metrics.stalled)
            .metric("allowed_moves", outcome.metrics.allowed_moves)
            .metric("edges_discovered", outcome.metrics.edges_discovered)
            .metric("edge_events", outcome.metrics.edge_events);
        if let Some(sample) = tracker.current() {
            if let Some(v) = sample.rounds {
                m.margin("theorem1_rounds", v);
            }
            if let Some(v) = sample.reanchors {
                m.margin("lemma2_reanchors", v);
            }
        }
        m.reanchors_by_depth = tracker.reanchors_by_depth().to_vec();
        m.events_emitted = events_emitted;
        m.trace_path = self.trace_out.clone();
        m
    }

    fn report(&self, tree: &Tree, outcome: &Outcome) -> String {
        let bound = bfdn::theorem1_bound(tree.len(), tree.depth(), self.k, tree.max_degree());
        let mut report = String::new();
        if let Some(trace) = &outcome.trace {
            let renderer = bfdn_sim::render::TraceRenderer::new(tree, trace);
            let stride = (trace.len() / 8).max(1);
            report.push_str(&renderer.animate(stride));
            report.push('\n');
        }
        report.push_str(&format!(
            "{} on {} (seed {}): {} rounds with k={} \
             ({} edges discovered, {} edge events, Theorem 1 envelope {:.0})\n",
            self.algo,
            tree,
            self.seed,
            outcome.rounds,
            self.k,
            outcome.metrics.edges_discovered,
            outcome.metrics.edge_events,
            bound,
        ));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExploreArgs, ParseError> {
        ExploreArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_parse_empty() {
        assert_eq!(parse(&[]).unwrap(), ExploreArgs::default());
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&[
            "--family", "comb", "--n", "500", "--k", "12", "--algo", "cte", "--seed", "7",
            "--render",
        ])
        .unwrap();
        assert_eq!(a.family.name(), "comb");
        assert_eq!((a.n, a.k, a.seed), (500, 12, 7));
        assert_eq!(a.algo, "cte");
        assert!(a.render);
    }

    #[test]
    fn observability_flags_parse() {
        let a = parse(&[
            "--trace-out",
            "/tmp/t.jsonl",
            "--manifest-out",
            "/tmp/m.json",
            "--log",
            "debug",
        ])
        .unwrap();
        assert_eq!(
            a.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
        assert_eq!(
            a.manifest_out.as_deref(),
            Some(std::path::Path::new("/tmp/m.json"))
        );
        assert_eq!(a.log, LogLevel::Debug);
        assert!(parse(&["--log", "loud"]).is_err());
        assert!(!parse(&[]).unwrap().observing());
        assert!(a.observing());
    }

    #[test]
    fn rejects_unknowns() {
        assert!(parse(&["--algo", "quantum"]).is_err());
        assert!(parse(&["--family", "nope"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--n"]).is_err());
        assert!(parse(&["--k", "0"]).is_err());
        assert!(parse(&["--n", "many"]).is_err());
    }

    #[test]
    fn every_advertised_algorithm_runs() {
        for algo in ExploreArgs::ALGORITHMS {
            let args = ExploreArgs {
                n: 60,
                k: 4,
                algo: algo.into(),
                ..ExploreArgs::default()
            };
            let report = args.run().unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(report.contains("rounds"), "{algo}: {report}");
        }
    }

    #[test]
    fn render_produces_frames() {
        let args = ExploreArgs {
            family: Family::Comb,
            n: 12,
            k: 2,
            render: true,
            ..ExploreArgs::default()
        };
        let report = args.run().unwrap();
        assert!(report.contains("round 0:"));
    }

    #[test]
    fn observed_run_writes_trace_and_manifest() {
        let dir = std::env::temp_dir();
        let trace = dir.join("bfdn_bench_cli_test.jsonl");
        let manifest = dir.join("bfdn_bench_cli_test.manifest.json");
        let args = ExploreArgs {
            family: Family::Comb,
            n: 80,
            k: 4,
            trace_out: Some(trace.clone()),
            manifest_out: Some(manifest.clone()),
            ..ExploreArgs::default()
        };
        let report = args.run().unwrap();
        assert!(report.contains("manifest:"));
        assert!(report.contains("trace:"));
        assert!(!report.contains("WARNING"));

        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text
            .lines()
            .all(|l| l.starts_with(r#"{"event":""#) && l.ends_with('}')));
        let reanchors = trace_text
            .lines()
            .filter(|l| l.contains(r#""event":"reanchor""#))
            .count();
        assert!(reanchors > 0);
        assert!(trace_text.contains(r#""event":"phase_timer""#));

        let manifest_text = std::fs::read_to_string(&manifest).unwrap();
        for needle in [
            r#""algorithm":"bfdn""#,
            r#""workload":"comb""#,
            r#""k":4"#,
            r#""phases":{"build_tree":"#,
            r#""margins":{"theorem1_rounds":"#,
            r#""reanchors_by_depth":"#,
            r#""events_emitted":"#,
        ] {
            assert!(
                manifest_text.contains(needle),
                "{needle} missing from {manifest_text}"
            );
        }
        // The manifest's reanchor total matches the JSONL trace.
        assert!(manifest_text.contains(&format!(r#""total_reanchors":{reanchors}"#)));

        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(&manifest);
    }
}
