//! A1 — Ablations of the design choices called out in `DESIGN.md`,
//! measured in *rounds* (the model's cost); the criterion benches in
//! `benches/ablations.rs` measure the wall-clock side.

use crate::{Scale, Table};
use bfdn::{Bfdn, BfdnL, ReanchorRule, SelectionOrder};
use bfdn_sim::Simulator;
use bfdn_trees::generators;
use rand::SeedableRng;

/// Runs the four ablations; one row per (ablation, arm, workload).
pub fn a1_ablations(scale: Scale) -> Table {
    let mut table = Table::new(
        "A1: ablations — rounds per design-choice arm",
        &["ablation", "arm", "tree", "n", "k", "rounds", "reanchors"],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA1);
    let n = scale.size(4_000);
    let k = 16;

    // 1. Reanchor rule (the Theorem 3 strategy vs foils).
    let bushy = generators::uniform_labeled(n, &mut rng);
    for (arm, rule) in [
        ("least-loaded", ReanchorRule::LeastLoaded),
        ("first-candidate", ReanchorRule::FirstCandidate),
        ("round-robin", ReanchorRule::RoundRobin),
        ("random", ReanchorRule::Random(0xA1)),
    ] {
        let mut algo = Bfdn::builder(k).reanchor_rule(rule).build();
        let rounds = Simulator::new(&bushy, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("A1 rule {arm}: {e}"))
            .rounds;
        table.row(vec![
            "reanchor-rule".into(),
            arm.into(),
            "uniform-labeled".into(),
            bushy.len().to_string(),
            k.to_string(),
            rounds.to_string(),
            algo.total_reanchors().to_string(),
        ]);
    }

    // 1b. Reanchor rule on an adversarial workload: a spider whose legs
    // end in same-depth pockets of wildly unequal hidden size — the
    // Theorem 3 game as a tree. Piling everyone onto one candidate
    // (first-candidate) serializes the pockets; the least-loaded rule
    // spreads the fleet.
    let star = generators::spider_with_pockets(2 * k, scale.size(512) / 8, 4);
    for (arm, rule) in [
        ("least-loaded", ReanchorRule::LeastLoaded),
        ("first-candidate", ReanchorRule::FirstCandidate),
        ("round-robin", ReanchorRule::RoundRobin),
        ("random", ReanchorRule::Random(0xA2)),
    ] {
        let mut algo = Bfdn::builder(k).reanchor_rule(rule).build();
        let rounds = Simulator::new(&star, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("A1 adversarial rule {arm}: {e}"))
            .rounds;
        table.row(vec![
            "reanchor-rule-adversarial".into(),
            arm.into(),
            "spider-pockets".into(),
            star.len().to_string(),
            k.to_string(),
            rounds.to_string(),
            algo.total_reanchors().to_string(),
        ]);
    }

    // 2. Selection order.
    let recursive_tree = generators::random_recursive(n, &mut rng);
    for (arm, order) in [
        ("fixed", SelectionOrder::Fixed),
        ("rotating", SelectionOrder::Rotating),
    ] {
        let mut algo = Bfdn::builder(k).selection_order(order).build();
        let rounds = Simulator::new(&recursive_tree, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("A1 order {arm}: {e}"))
            .rounds;
        table.row(vec![
            "selection-order".into(),
            arm.into(),
            "random-recursive".into(),
            recursive_tree.len().to_string(),
            k.to_string(),
            rounds.to_string(),
            algo.total_reanchors().to_string(),
        ]);
    }

    // 3. Root return vs LCA shortcut (deep caterpillar: root trips hurt).
    let deep = generators::caterpillar(scale.size(1_600) / 8, k);
    for (arm, shortcut) in [("root-return", false), ("lca-shortcut", true)] {
        let mut algo = Bfdn::builder(k).shortcut(shortcut).build();
        let rounds = Simulator::new(&deep, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("A1 shortcut {arm}: {e}"))
            .rounds;
        table.row(vec![
            "shortcut".into(),
            arm.into(),
            "deep-caterpillar".into(),
            deep.len().to_string(),
            k.to_string(),
            rounds.to_string(),
            algo.total_reanchors().to_string(),
        ]);
    }

    // 4. BFDN_l depth schedule.
    for (arm, base) in [("doubling", 2u32), ("quadrupling", 4u32)] {
        let mut algo = BfdnL::with_growth(k, 2, base);
        let rounds = Simulator::new(&deep, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("A1 schedule {arm}: {e}"))
            .rounds;
        table.row(vec![
            "depth-schedule".into(),
            arm.into(),
            "deep-caterpillar".into(),
            deep.len().to_string(),
            k.to_string(),
            rounds.to_string(),
            "-".into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_arms_complete() {
        let t = a1_ablations(Scale::Quick);
        assert_eq!(t.len(), 4 + 4 + 2 + 2 + 2);
    }
}
