//! A1 — Ablations of the design choices called out in `DESIGN.md`,
//! measured in *rounds* (the model's cost); the criterion benches in
//! `benches/ablations.rs` measure the wall-clock side.

use crate::{parallel, Scale, Table};
use bfdn::{Bfdn, BfdnL, ReanchorRule, SelectionOrder};
use bfdn_sim::Simulator;
use bfdn_trees::generators;
use rand::SeedableRng;

/// Runs the four ablations; one row per (ablation, arm, workload).
pub fn a1_ablations(scale: Scale) -> Table {
    let mut table = Table::new(
        "A1: ablations — rounds per design-choice arm",
        &["ablation", "arm", "tree", "n", "k", "rounds", "reanchors"],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA1);
    let n = scale.size(4_000);
    let k = 16;

    // Workloads first, consuming the shared RNG in the committed order.
    // 1b's spider: legs end in same-depth pockets of wildly unequal
    // hidden size — the Theorem 3 game as a tree; piling everyone onto
    // one candidate (first-candidate) serializes the pockets, while the
    // least-loaded rule spreads the fleet. 3/4's deep caterpillar makes
    // root round-trips hurt.
    let bushy = generators::uniform_labeled(n, &mut rng);
    let star = generators::spider_with_pockets(2 * k, scale.size(512) / 8, 4);
    let recursive_tree = generators::random_recursive(n, &mut rng);
    let deep = generators::caterpillar(scale.size(1_600) / 8, k);

    // One unit per arm, tagged (ablation section, arm index).
    let rules = [
        ("least-loaded", ReanchorRule::LeastLoaded),
        ("first-candidate", ReanchorRule::FirstCandidate),
        ("round-robin", ReanchorRule::RoundRobin),
        ("random", ReanchorRule::Random(0xA1)),
    ];
    let adv_rules = [
        ("least-loaded", ReanchorRule::LeastLoaded),
        ("first-candidate", ReanchorRule::FirstCandidate),
        ("round-robin", ReanchorRule::RoundRobin),
        ("random", ReanchorRule::Random(0xA2)),
    ];
    let orders = [
        ("fixed", SelectionOrder::Fixed),
        ("rotating", SelectionOrder::Rotating),
    ];
    let shortcuts = [("root-return", false), ("lca-shortcut", true)];
    let schedules = [("doubling", 2u32), ("quadrupling", 4u32)];
    let configs: Vec<(usize, usize)> = [4usize, 4, 2, 2, 2]
        .iter()
        .enumerate()
        .flat_map(|(section, &arms)| (0..arms).map(move |a| (section, a)))
        .collect();
    let rows = parallel::par_map(&configs, |&(section, a)| match section {
        // 1. Reanchor rule (the Theorem 3 strategy vs foils).
        0 => {
            let (arm, ref rule) = rules[a];
            let mut algo = Bfdn::builder(k).reanchor_rule(rule.clone()).build();
            let rounds = Simulator::new(&bushy, k)
                .run(&mut algo)
                .unwrap_or_else(|e| panic!("A1 rule {arm}: {e}"))
                .rounds;
            vec![
                "reanchor-rule".into(),
                arm.into(),
                "uniform-labeled".into(),
                bushy.len().to_string(),
                k.to_string(),
                rounds.to_string(),
                algo.total_reanchors().to_string(),
            ]
        }
        // 1b. Reanchor rule on the adversarial spider.
        1 => {
            let (arm, ref rule) = adv_rules[a];
            let mut algo = Bfdn::builder(k).reanchor_rule(rule.clone()).build();
            let rounds = Simulator::new(&star, k)
                .run(&mut algo)
                .unwrap_or_else(|e| panic!("A1 adversarial rule {arm}: {e}"))
                .rounds;
            vec![
                "reanchor-rule-adversarial".into(),
                arm.into(),
                "spider-pockets".into(),
                star.len().to_string(),
                k.to_string(),
                rounds.to_string(),
                algo.total_reanchors().to_string(),
            ]
        }
        // 2. Selection order.
        2 => {
            let (arm, order) = orders[a];
            let mut algo = Bfdn::builder(k).selection_order(order).build();
            let rounds = Simulator::new(&recursive_tree, k)
                .run(&mut algo)
                .unwrap_or_else(|e| panic!("A1 order {arm}: {e}"))
                .rounds;
            vec![
                "selection-order".into(),
                arm.into(),
                "random-recursive".into(),
                recursive_tree.len().to_string(),
                k.to_string(),
                rounds.to_string(),
                algo.total_reanchors().to_string(),
            ]
        }
        // 3. Root return vs LCA shortcut.
        3 => {
            let (arm, shortcut) = shortcuts[a];
            let mut algo = Bfdn::builder(k).shortcut(shortcut).build();
            let rounds = Simulator::new(&deep, k)
                .run(&mut algo)
                .unwrap_or_else(|e| panic!("A1 shortcut {arm}: {e}"))
                .rounds;
            vec![
                "shortcut".into(),
                arm.into(),
                "deep-caterpillar".into(),
                deep.len().to_string(),
                k.to_string(),
                rounds.to_string(),
                algo.total_reanchors().to_string(),
            ]
        }
        // 4. BFDN_l depth schedule.
        _ => {
            let (arm, base) = schedules[a];
            let mut algo = BfdnL::with_growth(k, 2, base);
            let rounds = Simulator::new(&deep, k)
                .run(&mut algo)
                .unwrap_or_else(|e| panic!("A1 schedule {arm}: {e}"))
                .rounds;
            vec![
                "depth-schedule".into(),
                arm.into(),
                "deep-caterpillar".into(),
                deep.len().to_string(),
                k.to_string(),
                rounds.to_string(),
                "-".into(),
            ]
        }
    });
    for row in rows {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_arms_complete() {
        let t = a1_ablations(Scale::Quick);
        assert_eq!(t.len(), 4 + 4 + 2 + 2 + 2);
    }
}
