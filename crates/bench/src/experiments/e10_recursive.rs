//! E10 — Theorem 10: `BFDN_ℓ` on deep trees — bound checks plus the
//! `ℓ`-crossover (plain BFDN wins on shallow trees, the recursion wins
//! once `n/k^{1/ℓ} < D²`).

use crate::{parallel, Scale, Table};
use bfdn::{theorem10_bound, Bfdn, BfdnL};
use bfdn_sim::Simulator;
use bfdn_trees::{generators, Tree};

/// Runs E10: one row per (tree, ℓ), with `ℓ = 0` denoting plain BFDN.
///
/// # Panics
///
/// Panics if any `BFDN_ℓ` run exceeds the Theorem 10 bound.
pub fn e10_recursive(scale: Scale) -> Table {
    let mut table = Table::new(
        "E10: Theorem 10 — recursive BFDN_l on deep trees (l=0 row is plain BFDN)",
        &[
            "tree",
            "n",
            "D",
            "k",
            "l",
            "rounds",
            "bound",
            "rounds/bound",
        ],
    );
    let base = scale.size(2_048);
    let k = match scale {
        Scale::Quick => 16,
        Scale::Full | Scale::Huge => 64,
    };
    let instances: Vec<(&str, Tree)> = vec![
        // Shallow and bushy: the 2n/k work term dominates — plain BFDN's
        // side of the crossover.
        (
            "bushy",
            generators::complete_bary(4, ((base as f64).log2() / 2.0) as usize),
        ),
        // A deep caterpillar with k legs per spine node: every leg at
        // depth d costs plain BFDN a 2d root round-trip, the recursion
        // only a local trip — the regime where BFDN_l wins outright.
        ("deep-caterpillar", generators::caterpillar(base / 4, k)),
        // Broom: one long handle then parallel bristles.
        ("broom", generators::broom(base / 2, 16, base / 64)),
        // The extreme: a bare path (depth = n, inherently sequential).
        ("path", generators::path(base)),
    ];
    // One unit per (tree, ℓ) with ℓ = 0 meaning plain BFDN; unit order
    // reproduces the sequential row order (plain first, then ℓ = 1..3).
    let configs: Vec<(usize, u32)> = (0..instances.len())
        .flat_map(|t| (0u32..4).map(move |ell| (t, ell)))
        .collect();
    let rows = parallel::par_map(&configs, |&(t, ell)| {
        let (name, ref tree) = instances[t];
        if ell == 0 {
            let mut plain = Bfdn::new(k);
            let plain_rounds = Simulator::new(tree, k)
                .run(&mut plain)
                .unwrap_or_else(|e| panic!("E10 bfdn {name}: {e}"))
                .rounds;
            return vec![
                name.into(),
                tree.len().to_string(),
                tree.depth().to_string(),
                k.to_string(),
                "0".into(),
                plain_rounds.to_string(),
                "-".into(),
                "-".into(),
            ];
        }
        let mut algo = BfdnL::new(k, ell);
        let rounds = Simulator::new(tree, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("E10 bfdn_l{ell} {name}: {e}"))
            .rounds;
        let bound = theorem10_bound(tree.len(), tree.depth(), k, tree.max_degree(), ell);
        assert!(
            (rounds as f64) <= bound,
            "E10 violation: {name} ℓ={ell}: {rounds} > {bound}"
        );
        vec![
            name.into(),
            tree.len().to_string(),
            tree.depth().to_string(),
            k.to_string(),
            ell.to_string(),
            rounds.to_string(),
            format!("{bound:.0}"),
            format!("{:.3}", rounds as f64 / bound),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_passes() {
        let t = e10_recursive(Scale::Quick);
        assert_eq!(t.len(), 4 * 4);
    }

    #[test]
    fn recursion_beats_plain_on_the_deep_caterpillar() {
        // The headline of Theorem 10, measured. Needs a depth where the
        // 2d root round-trips dominate, hence a slightly larger run.
        use bfdn_sim::Simulator;
        let k = 64;
        let tree = bfdn_trees::generators::caterpillar(400, k);
        let mut plain = bfdn::Bfdn::new(k);
        let plain_rounds = Simulator::new(&tree, k).run(&mut plain).unwrap().rounds;
        let mut rec = bfdn::BfdnL::new(k, 2);
        let rec_rounds = Simulator::new(&tree, k).run(&mut rec).unwrap().rounds;
        assert!(
            rec_rounds * 3 < plain_rounds * 2,
            "BFDN_2 ({rec_rounds}) should beat plain BFDN ({plain_rounds}) by ≥ 1.5x"
        );
    }
}
