//! E1 — Theorem 1: measured rounds against the
//! `2n/k + D²(min{log Δ, log k} + 3)` guarantee, across every workload
//! family and a `k` sweep.

use crate::{parallel, Scale, Table};
use bfdn::{theorem1_bound, Bfdn};
use bfdn_sim::Simulator;
use bfdn_trees::generators::Family;
use rand::SeedableRng;

/// Runs E1 and returns one row per (family, n, k).
///
/// # Panics
///
/// Panics if any run exceeds the Theorem 1 bound — that would falsify
/// the reproduction.
pub fn e1_theorem1_bound(scale: Scale) -> Table {
    let mut table = Table::new(
        "E1: Theorem 1 — rounds vs 2n/k + D^2(min(log Δ, log k)+3)",
        &[
            "family",
            "n",
            "D",
            "Δ",
            "k",
            "rounds",
            "bound",
            "rounds/bound",
        ],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE1);
    let sizes = match scale {
        Scale::Quick => vec![200],
        Scale::Full => vec![2_000, 50_000],
        Scale::Huge => vec![1_000_000],
    };
    let ks: &[usize] = match scale {
        Scale::Quick => &[2, 8, 32],
        Scale::Full => &[1, 2, 8, 32, 128, 512],
        Scale::Huge => &[64, 256, 1024, 4096],
    };
    // Huge scale keeps only the shallow bounded-degree families: rounds
    // grow at least linearly in D, so a million-node path (D = n) or
    // Prüfer tree (D ≈ √n) would spend days proving nothing new about
    // the bound — the D² term already dominates those at 50 000 nodes
    // in Full. Star is also out: its root degree n−1 exceeds the u16
    // port width (`Port::new` caps local degree at 65 535).
    let families: &[Family] = match scale {
        Scale::Huge => &[
            Family::Binary,
            Family::RandomRecursive,
            Family::RandomBoundedDegree,
        ],
        _ => &Family::ALL,
    };
    // Tree generation stays sequential so the shared RNG is consumed in
    // the committed order; only the simulations fan out.
    let mut trees = Vec::new();
    for &fam in families {
        for &n in &sizes {
            trees.push((fam, n, fam.instance(n, &mut rng)));
        }
    }
    let configs: Vec<(usize, usize)> = (0..trees.len())
        .flat_map(|t| ks.iter().map(move |&k| (t, k)))
        .collect();
    let rows = parallel::par_map(&configs, |&(t, k)| {
        let (fam, n, ref tree) = trees[t];
        let mut algo = Bfdn::new(k);
        let outcome = Simulator::new(tree, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("E1 {fam} n={n} k={k}: {e}"));
        let bound = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
        let ratio = outcome.rounds as f64 / bound;
        assert!(
            ratio <= 1.0,
            "E1 violation: {fam} n={n} k={k}: {} > {bound}",
            outcome.rounds
        );
        vec![
            fam.name().into(),
            tree.len().to_string(),
            tree.depth().to_string(),
            tree.max_degree().to_string(),
            k.to_string(),
            outcome.rounds.to_string(),
            format!("{bound:.0}"),
            format!("{ratio:.3}"),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_passes_and_fills_rows() {
        let t = e1_theorem1_bound(Scale::Quick);
        assert_eq!(t.len(), Family::ALL.len() * 3);
        // Every ratio is at most 1 (asserted inside), and positive.
        let col = t.col("rounds/bound");
        for r in 0..t.len() {
            let v: f64 = t.cell(r, col).parse().unwrap();
            assert!(v > 0.0 && v <= 1.0);
        }
    }
}
