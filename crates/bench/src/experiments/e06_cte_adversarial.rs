//! E6 — The CTE lower-bound side: adversarial families (realizing the
//! ingredients of Higashikawa et al.'s tightness construction \[11\])
//! where CTE's even split wastes robots, while BFDN stays within its
//! additive overhead.

use crate::{parallel, Scale, Table};
use bfdn::{offline_lower_bound, Bfdn};
use bfdn_baselines::Cte;
use bfdn_sim::Simulator;
use bfdn_trees::{generators, Tree};

/// Runs E6: one row per (adversarial family, k) with the CTE/BFDN ratio.
pub fn e6_cte_adversarial(scale: Scale) -> Table {
    let mut table = Table::new(
        "E6: adversarial trees — CTE vs BFDN (ratios against the offline lower bound)",
        &[
            "tree",
            "n",
            "D",
            "k",
            "cte",
            "bfdn",
            "cte/lower",
            "bfdn/lower",
            "cte/bfdn",
        ],
    );
    let depth = scale.size(256);
    let ks: &[usize] = match scale {
        Scale::Quick => &[8, 32],
        Scale::Full | Scale::Huge => &[8, 32, 128],
    };
    // The adversarial generators are deterministic, so each unit can
    // build its own instance: one unit per (k, family).
    let configs: Vec<(usize, usize)> = ks
        .iter()
        .flat_map(|&k| (0..5).map(move |f| (k, f)))
        .collect();
    let rows = parallel::par_map(&configs, |&(k, f)| {
        let (name, tree): (&str, Tree) = match f {
            0 => ("decoy-spine", generators::decoy_spine(depth, depth / 16, 2)),
            1 => ("uneven-star", generators::uneven_star(4 * k, depth)),
            2 => (
                "hidden-pocket",
                generators::hidden_pocket(k, depth, k * depth / 2),
            ),
            3 => ("vine", generators::lopsided_vine(depth)),
            _ => ("caterpillar", generators::caterpillar(depth, k)),
        };
        let mut cte = Cte::new(k);
        let cte_rounds = Simulator::new(&tree, k)
            .run(&mut cte)
            .unwrap_or_else(|e| panic!("E6 cte {name} k={k}: {e}"))
            .rounds;
        let mut bfdn = Bfdn::new(k);
        let bfdn_rounds = Simulator::new(&tree, k)
            .run(&mut bfdn)
            .unwrap_or_else(|e| panic!("E6 bfdn {name} k={k}: {e}"))
            .rounds;
        let lower = offline_lower_bound(tree.len(), tree.depth(), k);
        vec![
            name.into(),
            tree.len().to_string(),
            tree.depth().to_string(),
            k.to_string(),
            cte_rounds.to_string(),
            bfdn_rounds.to_string(),
            format!("{:.2}", cte_rounds as f64 / lower),
            format!("{:.2}", bfdn_rounds as f64 / lower),
            format!("{:.2}", cte_rounds as f64 / bfdn_rounds as f64),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn some_family_separates_cte_from_bfdn() {
        let t = e6_cte_adversarial(Scale::Quick);
        let ratio = t.col("cte/bfdn");
        let max: f64 = (0..t.len())
            .map(|r| t.cell(r, ratio).parse::<f64>().unwrap())
            .fold(0.0, f64::max);
        assert!(
            max > 1.2,
            "expected at least one family where CTE trails BFDN by >20% (max ratio {max})"
        );
    }
}
