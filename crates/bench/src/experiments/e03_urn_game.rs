//! E3 — Theorem 3: measured game lengths against
//! `k·min{log Δ, log k} + 2k`, for every adversary, plus the exact game
//! value from the dynamic program for moderate `k`.

use crate::{parallel, Scale, Table};
use urn_game::{
    play, theorem3_bound, Adversary, DrainAdversary, GameValue, GreedyAdversary, LeastLoadedPlayer,
    RandomAdversary, UrnGame,
};

/// Runs E3: one row per (k, Δ, adversary).
///
/// # Panics
///
/// Panics if any game exceeds the Theorem 3 bound.
pub fn e3_urn_game(scale: Scale) -> Table {
    let mut table = Table::new(
        "E3: Theorem 3 — game length vs k·min(log Δ, log k) + 2k (least-loaded player)",
        &[
            "k",
            "Δ",
            "adversary",
            "steps",
            "dp_exact",
            "bound",
            "steps/bound",
        ],
    );
    let ks: &[usize] = match scale {
        Scale::Quick => &[8, 64],
        Scale::Full | Scale::Huge => &[8, 64, 512, 4096],
    };
    let dp_cutoff = match scale {
        Scale::Quick => 64,
        Scale::Full | Scale::Huge => 512,
    };
    let mut configs: Vec<(usize, usize)> = Vec::new();
    for &k in ks {
        let mut deltas = vec![2usize, 8, k];
        deltas.sort_unstable();
        deltas.dedup();
        for delta in deltas {
            configs.push((k, delta));
        }
    }
    // One unit per (k, Δ): the DP table is the expensive part and is
    // shared by that unit's three adversary rows.
    let rows = parallel::par_map(&configs, |&(k, delta)| {
        let dp = (k <= dp_cutoff).then(|| GameValue::new(k, delta).value());
        let adversaries: Vec<Box<dyn Adversary>> = vec![
            Box::new(GreedyAdversary),
            Box::new(RandomAdversary::new(k as u64 ^ 0xE3)),
            Box::new(DrainAdversary),
        ];
        let mut rows = Vec::new();
        for mut adv in adversaries {
            let name = adv.name().to_string();
            let rec = play(UrnGame::new(k, delta), &mut LeastLoadedPlayer, &mut *adv);
            let bound = theorem3_bound(k, delta);
            assert!(
                (rec.steps as f64) <= bound,
                "E3 violation: k={k} Δ={delta} {name}: {} > {bound}",
                rec.steps
            );
            if let (Some(dp), "greedy") = (dp, name.as_str()) {
                assert_eq!(
                    rec.steps as u32, dp,
                    "greedy adversary must realize the DP optimum"
                );
            }
            rows.push(vec![
                k.to_string(),
                delta.to_string(),
                name,
                rec.steps.to_string(),
                dp.map_or("-".into(), |v| v.to_string()),
                format!("{bound:.0}"),
                format!("{:.3}", rec.steps as f64 / bound),
            ]);
        }
        rows
    });
    for unit in rows {
        for row in unit {
            table.row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_passes() {
        let t = e3_urn_game(Scale::Quick);
        // k = 8 contributes 2 distinct Δ values, k = 64 contributes 3;
        // three adversaries each.
        assert_eq!(t.len(), (2 + 3) * 3);
        // The greedy adversary always lasts at least as long as drain.
        let steps = t.col("steps");
        for chunk in 0..t.len() / 3 {
            let greedy: u64 = t.cell(chunk * 3, steps).parse().unwrap();
            let drain: u64 = t.cell(chunk * 3 + 2, steps).parse().unwrap();
            assert!(greedy >= drain);
        }
    }
}
