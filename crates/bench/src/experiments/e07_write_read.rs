//! E7 — Proposition 6: the write-read (restricted memory and
//! communication) implementation matches the Theorem 1 envelope and
//! stays comparable to the complete-communication version.

use crate::{Scale, Table};
use bfdn::{theorem1_bound, Bfdn, WriteReadBfdn};
use bfdn_sim::Simulator;
use bfdn_trees::generators::Family;
use rand::SeedableRng;

/// Runs E7: one row per (family, k).
///
/// # Panics
///
/// Panics if the write-read implementation exceeds the Theorem 1 bound.
pub fn e7_write_read(scale: Scale) -> Table {
    let mut table = Table::new(
        "E7: Proposition 6 — write-read model vs complete communication",
        &[
            "family",
            "n",
            "k",
            "complete",
            "write_read",
            "bound",
            "wr/bound",
        ],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE7);
    let n = scale.size(8_000);
    let ks: &[usize] = match scale {
        Scale::Quick => &[4, 16],
        Scale::Full => &[4, 16, 64],
    };
    for fam in Family::ALL {
        let tree = fam.instance(n, &mut rng);
        for &k in ks {
            let mut cc = Bfdn::new(k);
            let cc_rounds = Simulator::new(&tree, k)
                .run(&mut cc)
                .unwrap_or_else(|e| panic!("E7 cc {fam} k={k}: {e}"))
                .rounds;
            let mut wr = WriteReadBfdn::new(k);
            let wr_rounds = Simulator::new(&tree, k)
                .run(&mut wr)
                .unwrap_or_else(|e| panic!("E7 wr {fam} k={k}: {e}"))
                .rounds;
            let bound = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
            assert!(
                (wr_rounds as f64) <= bound,
                "E7 violation: {fam} k={k}: {wr_rounds} > {bound}"
            );
            table.row(vec![
                fam.name().into(),
                tree.len().to_string(),
                k.to_string(),
                cc_rounds.to_string(),
                wr_rounds.to_string(),
                format!("{bound:.0}"),
                format!("{:.3}", wr_rounds as f64 / bound),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_passes() {
        let t = e7_write_read(Scale::Quick);
        assert_eq!(t.len(), Family::ALL.len() * 2);
    }
}
