//! E7 — Proposition 6: the write-read (restricted memory and
//! communication) implementation matches the Theorem 1 envelope and
//! stays comparable to the complete-communication version.

use crate::{parallel, Scale, Table};
use bfdn::{theorem1_bound, Bfdn, WriteReadBfdn};
use bfdn_sim::{Explorer, Simulator, Trace};
use bfdn_trees::generators::Family;
use bfdn_trees::Tree;
use rand::SeedableRng;

/// The round by which half the nodes had been visited for the first
/// time — the progress milestone the trace comparison uses. Computed
/// from [`Trace::first_visits`], the lazily built index (one pass over
/// the trace instead of one scan per node).
fn half_visit_round(trace: &Trace) -> u64 {
    let mut rounds: Vec<u64> = trace.first_visits().values().copied().collect();
    rounds.sort_unstable();
    rounds.get(rounds.len() / 2).copied().unwrap_or(0)
}

fn traced_run(tree: &Tree, k: usize, explorer: &mut dyn Explorer, label: &str) -> (u64, Trace) {
    let outcome = Simulator::new(tree, k)
        .record_trace()
        .run(explorer)
        .unwrap_or_else(|e| panic!("E7 {label}: {e}"));
    let trace = outcome.trace.expect("trace recording was enabled");
    (outcome.rounds, trace)
}

/// Runs E7: one row per (family, k).
///
/// # Panics
///
/// Panics if the write-read implementation exceeds the Theorem 1 bound.
pub fn e7_write_read(scale: Scale) -> Table {
    let mut table = Table::new(
        "E7: Proposition 6 — write-read model vs complete communication",
        &[
            "family",
            "n",
            "k",
            "complete",
            "write_read",
            "bound",
            "wr/bound",
            "half_visit_cc",
            "half_visit_wr",
        ],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE7);
    let n = scale.size(8_000);
    let ks: &[usize] = match scale {
        Scale::Quick => &[4, 16],
        Scale::Full | Scale::Huge => &[4, 16, 64],
    };
    // Trees first (sequential RNG order), then one unit per (tree, k).
    let trees: Vec<_> = Family::ALL
        .iter()
        .map(|&fam| (fam, fam.instance(n, &mut rng)))
        .collect();
    let configs: Vec<(usize, usize)> = (0..trees.len())
        .flat_map(|t| ks.iter().map(move |&k| (t, k)))
        .collect();
    let rows = parallel::par_map(&configs, |&(t, k)| {
        let (fam, ref tree) = trees[t];
        let mut cc = Bfdn::new(k);
        let (cc_rounds, cc_trace) = traced_run(tree, k, &mut cc, &format!("cc {fam} k={k}"));
        let mut wr = WriteReadBfdn::new(k);
        let (wr_rounds, wr_trace) = traced_run(tree, k, &mut wr, &format!("wr {fam} k={k}"));
        let bound = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
        assert!(
            (wr_rounds as f64) <= bound,
            "E7 violation: {fam} k={k}: {wr_rounds} > {bound}"
        );
        vec![
            fam.name().into(),
            tree.len().to_string(),
            k.to_string(),
            cc_rounds.to_string(),
            wr_rounds.to_string(),
            format!("{bound:.0}"),
            format!("{:.3}", wr_rounds as f64 / bound),
            half_visit_round(&cc_trace).to_string(),
            half_visit_round(&wr_trace).to_string(),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_passes() {
        let t = e7_write_read(Scale::Quick);
        assert_eq!(t.len(), Family::ALL.len() * 2);
    }

    #[test]
    fn half_visit_milestone_is_within_the_run() {
        let t = e7_write_read(Scale::Quick);
        for row in 0..t.len() {
            let total: u64 = t.cell(row, t.col("complete")).parse().unwrap();
            let half: u64 = t.cell(row, t.col("half_visit_cc")).parse().unwrap();
            assert!(half <= total, "row {row}: half {half} > total {total}");
        }
    }
}
