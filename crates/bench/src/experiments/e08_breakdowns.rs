//! E8 — Proposition 7: under adversarial break-downs, the robust BFDN
//! variant finishes once the average allowed moves per robot reaches
//! `2n/k + D²(log k + 3)`.

use crate::{parallel, Scale, Table};
use bfdn::{proposition7_bound, Bfdn};
use bfdn_sim::{
    BurstStall, MoveSchedule, RandomStall, RoundRobinStall, Simulator, StopCondition, TargetedStall,
};
use bfdn_trees::generators::Family;
use rand::SeedableRng;

/// Runs E8: one row per (family, schedule).
///
/// # Panics
///
/// Panics if exploration completes only after the allowed-move average
/// exceeds the Proposition 7 bound.
pub fn e8_breakdowns(scale: Scale) -> Table {
    let mut table = Table::new(
        "E8: Proposition 7 — break-down adversaries (A(M) = allowed moves per robot)",
        &[
            "family",
            "n",
            "k",
            "schedule",
            "rounds",
            "A(M)",
            "bound",
            "A(M)/bound",
        ],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE8);
    let n = scale.size(4_000);
    let k = 16;
    // Trees first (sequential RNG order); schedules carry per-run state,
    // so each (tree, schedule) unit constructs its own copy.
    let trees: Vec<_> = Family::ALL
        .iter()
        .map(|&fam| (fam, fam.instance(n, &mut rng)))
        .collect();
    let configs: Vec<(usize, usize)> = (0..trees.len())
        .flat_map(|t| (0..4).map(move |s| (t, s)))
        .collect();
    let rows = parallel::par_map(&configs, |&(t, s)| {
        let (fam, ref tree) = trees[t];
        let mut schedule: Box<dyn MoveSchedule> = match s {
            0 => Box::new(RandomStall::new(0.4, 0xE8)),
            1 => Box::new(RoundRobinStall::new(k / 2)),
            2 => Box::new(BurstStall::new(11, 4)),
            _ => {
                let depths: Vec<usize> = tree.node_ids().map(|v| tree.node_depth(v)).collect();
                Box::new(TargetedStall::new(depths, 0.5, 0xE8))
            }
        };
        let name = schedule.name().to_string();
        let mut algo = Bfdn::new_robust(k);
        let outcome = Simulator::new(tree, k)
            .run_with(&mut algo, &mut *schedule, StopCondition::Explored)
            .unwrap_or_else(|e| panic!("E8 {fam} {name}: {e}"));
        let avg_allowed = outcome.metrics.average_allowed();
        let bound = proposition7_bound(tree.len(), tree.depth(), k);
        assert!(
            avg_allowed <= bound,
            "E8 violation: {fam} {name}: A(M)={avg_allowed:.0} > {bound:.0}"
        );
        vec![
            fam.name().into(),
            tree.len().to_string(),
            k.to_string(),
            name,
            outcome.rounds.to_string(),
            format!("{avg_allowed:.0}"),
            format!("{bound:.0}"),
            format!("{:.3}", avg_allowed / bound),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_passes() {
        let t = e8_breakdowns(Scale::Quick);
        assert_eq!(t.len(), Family::ALL.len() * 4);
    }
}
