//! E9 — Proposition 9: exploration of grid graphs with rectangular
//! obstacles, with the `2m/k + D²(min{log Δ, log k}+3)` bound on a graph
//! with `m` edges and radius `D`.

use crate::{parallel, Scale, Table};
use bfdn::GraphBfdn;
use bfdn_trees::grid::{GridGraph, Rect};

/// Runs E9: one row per (grid, k).
///
/// # Panics
///
/// Panics if any run exceeds the Proposition 9 bound.
pub fn e9_graphs(scale: Scale) -> Table {
    let mut table = Table::new(
        "E9: Proposition 9 — grid graphs with rectangular obstacles",
        &[
            "grid",
            "nodes",
            "edges",
            "radius",
            "manhattan",
            "k",
            "rounds",
            "closed",
            "bound",
            "rounds/bound",
        ],
    );
    let side = match scale {
        Scale::Quick => 12,
        Scale::Full | Scale::Huge => 60,
    };
    let grids = [
        ("open", GridGraph::new(side, side, &[])),
        (
            "one-block",
            GridGraph::new(
                side,
                side,
                &[Rect::new(side / 4, side / 4, side / 2, side / 2)],
            ),
        ),
        (
            "two-walls",
            GridGraph::new(
                side,
                side,
                &[
                    Rect::new(side / 5, 1, side / 5 + 1, side - 2),
                    Rect::new(3 * side / 5, 2, 3 * side / 5 + 1, side - 1),
                ],
            ),
        ),
        (
            "maze-blocks",
            GridGraph::new(
                side,
                side,
                &[
                    Rect::new(2, 2, side / 3, side / 3),
                    Rect::new(side / 2, side / 3, side - 2, side / 2),
                    Rect::new(side / 4, 2 * side / 3, side / 2, side - 2),
                ],
            ),
        ),
    ];
    let configs: Vec<(usize, usize)> = (0..grids.len())
        .flat_map(|g| [1usize, 4, 16, 64].into_iter().map(move |k| (g, k)))
        .collect();
    let rows = parallel::par_map(&configs, |&(gi, k)| {
        let (name, ref grid) = grids[gi];
        let g = grid.graph();
        let out = GraphBfdn::explore(g, grid.origin(), k)
            .unwrap_or_else(|e| panic!("E9 {name} k={k}: {e}"));
        assert!(
            (out.rounds as f64) <= out.bound,
            "E9 violation: {name} k={k}: {} > {}",
            out.rounds,
            out.bound
        );
        vec![
            name.into(),
            g.len().to_string(),
            g.num_edges().to_string(),
            g.radius_from(grid.origin()).to_string(),
            grid.distances_are_manhattan().to_string(),
            k.to_string(),
            out.rounds.to_string(),
            out.closed_edges.to_string(),
            format!("{:.0}", out.bound),
            format!("{:.3}", out.rounds as f64 / out.bound),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_passes_and_open_grid_is_manhattan() {
        let t = e9_graphs(Scale::Quick);
        assert_eq!(t.len(), 16);
        assert_eq!(t.cell(0, t.col("manhattan")), "true");
    }
}
