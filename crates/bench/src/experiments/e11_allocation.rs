//! E11 — The resource-allocation interpretation of Section 3: `k`
//! workers on `k` tasks of unknown length; least-crowded reassignment
//! bounds total task switches by `k·log k + 2k`.

use crate::{parallel, Scale, Table};
use urn_game::allocation::{run, ReassignPolicy};
use urn_game::theorem3_bound;

fn lengths(kind: &str, k: usize) -> Vec<u64> {
    match kind {
        "equal" => vec![64; k],
        "geometric" => (0..k).map(|i| 1u64 << (i % 12)).collect(),
        "linear" => (1..=k as u64).map(|i| i * 4).collect(),
        "one-giant" => {
            let mut v = vec![1u64; k];
            v[0] = 8 * k as u64;
            v
        }
        _ => unreachable!("unknown workload kind"),
    }
}

/// Runs E11: one row per (k, workload, policy).
///
/// # Panics
///
/// Panics if the least-crowded policy exceeds the `k·log k + 2k` switch
/// bound.
pub fn e11_allocation(scale: Scale) -> Table {
    let mut table = Table::new(
        "E11: online resource allocation — task switches vs k·log k + 2k",
        &[
            "k",
            "workload",
            "policy",
            "rounds",
            "switches",
            "bound",
            "switches/bound",
        ],
    );
    let ks: &[usize] = match scale {
        Scale::Quick => &[16, 64],
        Scale::Full | Scale::Huge => &[16, 64, 256, 1024],
    };
    // One unit per (k, workload): the four policies share the workload
    // vector and each run is cheap relative to building it at large k.
    let configs: Vec<(usize, &str)> = ks
        .iter()
        .flat_map(|&k| {
            ["equal", "geometric", "linear", "one-giant"]
                .into_iter()
                .map(move |kind| (k, kind))
        })
        .collect();
    let rows = parallel::par_map(&configs, |&(k, kind)| {
        let ls = lengths(kind, k);
        let mut rows = Vec::new();
        for policy in [
            ReassignPolicy::LeastCrowded,
            ReassignPolicy::MostCrowded,
            ReassignPolicy::random(0xE11),
            ReassignPolicy::RoundRobin { next: 0 },
        ] {
            let name = policy.name();
            let out = run(&ls, k, policy);
            let bound = theorem3_bound(k, k);
            if name == "least-crowded" {
                assert!(
                    (out.switches as f64) <= bound,
                    "E11 violation: k={k} {kind}: {} > {bound}",
                    out.switches
                );
            }
            rows.push(vec![
                k.to_string(),
                kind.into(),
                name.into(),
                out.rounds.to_string(),
                out.switches.to_string(),
                format!("{bound:.0}"),
                format!("{:.3}", out.switches as f64 / bound),
            ]);
        }
        rows
    });
    for unit in rows {
        for row in unit {
            table.row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_passes_and_equal_tasks_never_switch() {
        let t = e11_allocation(Scale::Quick);
        let (wl, pol, sw) = (t.col("workload"), t.col("policy"), t.col("switches"));
        for r in 0..t.len() {
            if t.cell(r, wl) == "equal" && t.cell(r, pol) == "least-crowded" {
                assert_eq!(t.cell(r, sw), "0");
            }
        }
    }
}
