//! E2 — Competitive overhead: BFDN against CTE, the offline split
//! traversal and the offline lower bound, on the workload families.
//!
//! The paper's thesis: BFDN's rounds are `2n/k` plus an overhead of at
//! most `D²(log k + 3)` — on work-dominated trees it tracks the offline
//! optimum while CTE pays a `k/log k` factor.

use crate::{parallel, Scale, Table};
use bfdn::{offline_lower_bound, theorem1_bound, Bfdn};
use bfdn_baselines::{Cte, OfflineSplit};
use bfdn_sim::Simulator;
use bfdn_trees::generators::Family;
use rand::SeedableRng;

/// Runs E2 and returns one row per (family, k).
pub fn e2_overhead_comparison(scale: Scale) -> Table {
    let mut table = Table::new(
        "E2: rounds of BFDN / CTE / offline-split vs the offline lower bound",
        &[
            "family",
            "n",
            "D",
            "k",
            "bfdn",
            "cte",
            "offline",
            "lower",
            "bfdn_overhead",
            "overhead_cap",
        ],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE2);
    let n = scale.size(20_000);
    let ks: &[usize] = match scale {
        Scale::Quick => &[4, 16],
        Scale::Full | Scale::Huge => &[4, 16, 64, 256],
    };
    // Trees first (sequential RNG order), then one unit per (tree, k).
    let trees: Vec<_> = Family::ALL
        .iter()
        .map(|&fam| (fam, fam.instance(n, &mut rng)))
        .collect();
    let configs: Vec<(usize, usize)> = (0..trees.len())
        .flat_map(|t| ks.iter().map(move |&k| (t, k)))
        .collect();
    let rows = parallel::par_map(&configs, |&(t, k)| {
        let (fam, ref tree) = trees[t];
        let mut bfdn = Bfdn::new(k);
        let bfdn_rounds = Simulator::new(tree, k)
            .run(&mut bfdn)
            .unwrap_or_else(|e| panic!("E2 bfdn {fam} k={k}: {e}"))
            .rounds;
        let mut cte = Cte::new(k);
        let cte_rounds = Simulator::new(tree, k)
            .run(&mut cte)
            .unwrap_or_else(|e| panic!("E2 cte {fam} k={k}: {e}"))
            .rounds;
        let offline = OfflineSplit::plan(tree, k).rounds();
        let lower = offline_lower_bound(tree.len(), tree.depth(), k);
        let overhead = bfdn_rounds as f64 - 2.0 * tree.num_edges() as f64 / k as f64;
        let cap = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree())
            - 2.0 * tree.len() as f64 / k as f64;
        vec![
            fam.name().into(),
            tree.len().to_string(),
            tree.depth().to_string(),
            k.to_string(),
            bfdn_rounds.to_string(),
            cte_rounds.to_string(),
            offline.to_string(),
            format!("{lower:.0}"),
            format!("{overhead:.0}"),
            format!("{cap:.0}"),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_never_beats_lower_bound() {
        let t = e2_overhead_comparison(Scale::Quick);
        let (off, low) = (t.col("offline"), t.col("lower"));
        for r in 0..t.len() {
            let o: f64 = t.cell(r, off).parse().unwrap();
            let l: f64 = t.cell(r, low).parse().unwrap();
            assert!(o + 1e-9 >= l, "row {r}: offline {o} < lower bound {l}");
        }
    }

    #[test]
    fn bfdn_overhead_stays_under_cap() {
        let t = e2_overhead_comparison(Scale::Quick);
        let (ov, cap) = (t.col("bfdn_overhead"), t.col("overhead_cap"));
        for r in 0..t.len() {
            let o: f64 = t.cell(r, ov).parse().unwrap();
            let c: f64 = t.cell(r, cap).parse().unwrap();
            assert!(o <= c + 1.0, "row {r}: overhead {o} > cap {c}");
        }
    }
}
