//! E12 — Competitive-ratio curves: how the ratio
//! `rounds / (n/k + D)` evolves with `k` for BFDN vs CTE.
//!
//! The paper's story in one sweep: CTE's ratio is `Θ(k/log k)` in the
//! worst case (here realized by the uneven star), while BFDN's
//! *overhead* form keeps its ratio flat wherever `D²·log k ≪ n/k` — and
//! on bushy trees both stay near the optimum.

use crate::{parallel, Scale, Table};
use bfdn::Bfdn;
use bfdn_analysis::competitive_ratio;
use bfdn_baselines::Cte;
use bfdn_sim::Simulator;
use bfdn_trees::{generators, Tree};
use rand::SeedableRng;

/// Runs E12: one row per (workload, k) with both ratios.
pub fn e12_ratio_curves(scale: Scale) -> Table {
    let mut table = Table::new(
        "E12: competitive ratio rounds/(n/k + D) as k grows — BFDN vs CTE",
        &["tree", "n", "D", "k", "bfdn_ratio", "cte_ratio", "cte/bfdn"],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE12);
    let depth = scale.size(2_048) / 8;
    let n = match scale {
        Scale::Huge => 1_000_000,
        _ => scale.size(16_000),
    };
    let ks: &[usize] = match scale {
        Scale::Quick => &[2, 8, 32],
        Scale::Full => &[2, 8, 32, 128, 512],
        Scale::Huge => &[64, 256, 1024, 4096],
    };
    // The uneven star is the Θ(k/log k) CTE story and Full already tells
    // it; at huge scale CTE on an adversarial million-node star would
    // run for hours, so huge keeps only the BFDN-friendly regime where
    // the point is that a million nodes and k=4096 stay near-optimal.
    let workloads: Vec<(&str, Tree)> = match scale {
        Scale::Huge => vec![(
            "random-recursive",
            generators::random_recursive(n, &mut rng),
        )],
        _ => vec![
            // The CTE-adversarial family: ratio should climb ~k/log k.
            ("uneven-star", {
                let legs = 4 * ks.last().copied().unwrap_or(32);
                generators::uneven_star(legs, depth)
            }),
            // The BFDN-friendly regime: both ratios stay near 1.
            (
                "random-recursive",
                generators::random_recursive(n, &mut rng),
            ),
        ],
    };
    let configs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| ks.iter().map(move |&k| (w, k)))
        .collect();
    let rows = parallel::par_map(&configs, |&(w, k)| {
        let (name, ref tree) = workloads[w];
        let mut bfdn = Bfdn::new(k);
        let b = Simulator::new(tree, k)
            .run(&mut bfdn)
            .unwrap_or_else(|e| panic!("E12 bfdn {name} k={k}: {e}"))
            .rounds;
        let mut cte = Cte::new(k);
        let c = Simulator::new(tree, k)
            .run(&mut cte)
            .unwrap_or_else(|e| panic!("E12 cte {name} k={k}: {e}"))
            .rounds;
        let br = competitive_ratio(b as f64, tree.len(), tree.depth(), k);
        let cr = competitive_ratio(c as f64, tree.len(), tree.depth(), k);
        vec![
            name.into(),
            tree.len().to_string(),
            tree.depth().to_string(),
            k.to_string(),
            format!("{br:.2}"),
            format!("{cr:.2}"),
            format!("{:.2}", cr / br),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cte_ratio_grows_on_the_uneven_star_while_bfdn_stays_flat() {
        let t = e12_ratio_curves(Scale::Quick);
        let (tree_col, k_col, b_col, c_col) = (
            t.col("tree"),
            t.col("k"),
            t.col("bfdn_ratio"),
            t.col("cte_ratio"),
        );
        let star_rows: Vec<usize> = (0..t.len())
            .filter(|&r| t.cell(r, tree_col) == "uneven-star")
            .collect();
        let first = star_rows[0];
        let last = *star_rows.last().unwrap();
        let _ = k_col;
        let cte_first: f64 = t.cell(first, c_col).parse().unwrap();
        let cte_last: f64 = t.cell(last, c_col).parse().unwrap();
        // Quick scale only sweeps k up to 32; the climb is modest there
        // (the full-scale table shows the Θ(k/log k) growth).
        assert!(
            cte_last > 1.3 * cte_first,
            "CTE ratio should climb with k: {cte_first} -> {cte_last}"
        );
        let bfdn_last: f64 = t.cell(last, b_col).parse().unwrap();
        assert!(
            bfdn_last < cte_last / 2.0,
            "BFDN stays far below CTE at large k ({bfdn_last} vs {cte_last})"
        );
    }
}
