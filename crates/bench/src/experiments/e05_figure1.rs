//! E5 — Figure 1: the best-guarantee region maps.

use crate::{parallel, Scale, Table};
use bfdn_analysis::{Algorithm, RegionMap};

/// The two maps (numeric argmin and Appendix-A schematic) plus the share
/// summary table.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// Share of the plane won by each algorithm, per `k`, per map kind.
    pub shares: Table,
    /// ASCII renderings, one per `(k, kind)`.
    pub maps: Vec<String>,
}

/// Runs E5 for `k ∈ {64, 1024}`.
pub fn e5_figure1(scale: Scale) -> Figure1 {
    let (w, h) = match scale {
        Scale::Quick => (30, 18),
        Scale::Full | Scale::Huge => (64, 40),
    };
    let mut shares = Table::new(
        "E5: Figure 1 — share of the (n, D) plane won by each guarantee",
        &["k", "map", "CTE", "Yo*", "BFDN", "BFDN_l"],
    );
    let configs: Vec<(usize, &str)> = [64usize, 1024]
        .iter()
        .flat_map(|&k| [(k, "numeric"), (k, "schematic")])
        .collect();
    let computed = parallel::par_map(&configs, |&(k, kind)| {
        let map = match kind {
            "numeric" => RegionMap::compute(k, w, h),
            _ => RegionMap::compute_schematic(k, w, h),
        };
        let row = vec![
            k.to_string(),
            kind.into(),
            format!("{:.3}", map.share(Algorithm::Cte)),
            format!("{:.3}", map.share(Algorithm::YoStar)),
            format!("{:.3}", map.share(Algorithm::Bfdn)),
            format!("{:.3}", map.share(Algorithm::BfdnL(2))),
        ];
        (row, map.to_ascii())
    });
    let mut maps = Vec::new();
    for (row, ascii) in computed {
        shares.row(row);
        maps.push(ascii);
    }
    Figure1 { shares, maps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_maps_with_all_regions_in_schematic() {
        let fig = e5_figure1(Scale::Quick);
        assert_eq!(fig.maps.len(), 4);
        assert_eq!(fig.shares.len(), 4);
        // Schematic rows show a non-zero Yo* share.
        let y = fig.shares.col("Yo*");
        for r in [1usize, 3] {
            let share: f64 = fig.shares.cell(r, y).parse().unwrap();
            assert!(share > 0.0, "schematic row {r} lost the Yo* region");
        }
    }
}
