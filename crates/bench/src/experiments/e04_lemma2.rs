//! E4 — Lemma 2: the number of `Reanchor` calls returning an anchor at
//! any fixed depth `d ≥ 1` never exceeds `k·(min{log k, log Δ} + 3)`.

use crate::{parallel, Scale, Table};
use bfdn::{lemma2_bound, Bfdn};
use bfdn_sim::Simulator;
use bfdn_trees::generators::Family;
use rand::SeedableRng;

/// Runs E4: one row per (family, k), reporting the worst depth.
///
/// # Panics
///
/// Panics if any per-depth reanchor count exceeds the Lemma 2 bound.
pub fn e4_lemma2_reanchors(scale: Scale) -> Table {
    let mut table = Table::new(
        "E4: Lemma 2 — per-depth Reanchor calls vs k·(min(log k, log Δ)+3)",
        &[
            "family",
            "n",
            "k",
            "total_reanchors",
            "worst_depth",
            "worst_count",
            "bound",
            "worst/bound",
        ],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE4);
    let n = scale.size(8_000);
    let ks: &[usize] = match scale {
        Scale::Quick => &[4, 16],
        Scale::Full | Scale::Huge => &[4, 16, 64, 256],
    };
    // Trees first (sequential RNG order), then one unit per (tree, k).
    let trees: Vec<_> = Family::ALL
        .iter()
        .map(|&fam| (fam, fam.instance(n, &mut rng)))
        .collect();
    let configs: Vec<(usize, usize)> = (0..trees.len())
        .flat_map(|t| ks.iter().map(move |&k| (t, k)))
        .collect();
    let rows = parallel::par_map(&configs, |&(t, k)| {
        let (fam, ref tree) = trees[t];
        let mut algo = Bfdn::new(k);
        Simulator::new(tree, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("E4 {fam} k={k}: {e}"));
        let bound = lemma2_bound(k, tree.max_degree());
        let (worst_depth, worst_count) = algo
            .reanchors_by_depth()
            .iter()
            .enumerate()
            .skip(1) // Lemma 2 concerns depths 1..D-1
            .max_by_key(|&(_, &c)| c)
            .map(|(d, &c)| (d, c))
            .unwrap_or((0, 0));
        assert!(
            (worst_count as f64) <= bound,
            "E4 violation: {fam} k={k} depth {worst_depth}: {worst_count} > {bound}"
        );
        vec![
            fam.name().into(),
            tree.len().to_string(),
            k.to_string(),
            algo.total_reanchors().to_string(),
            worst_depth.to_string(),
            worst_count.to_string(),
            format!("{bound:.0}"),
            format!("{:.3}", worst_count as f64 / bound),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_passes() {
        let t = e4_lemma2_reanchors(Scale::Quick);
        assert_eq!(t.len(), Family::ALL.len() * 2);
    }
}
