//! E13 — Seed-robustness: the random-workload numbers elsewhere in the
//! suite come from single seeds; this sweep re-runs BFDN and CTE over
//! many seeds and reports mean ± standard deviation, so `EXPERIMENTS.md`
//! can claim the shapes are not seed artifacts.

use crate::{parallel, Scale, Table};
use bfdn::{theorem1_bound, Bfdn};
use bfdn_baselines::Cte;
use bfdn_sim::Simulator;
use bfdn_trees::generators::Family;
use rand::SeedableRng;

fn mean_sd(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n.max(1.0);
    (mean, var.sqrt())
}

/// Runs E13: one row per (random family, k) with statistics over seeds.
///
/// # Panics
///
/// Panics if any single run violates Theorem 1.
pub fn e13_statistics(scale: Scale) -> Table {
    let mut table = Table::new(
        "E13: seed robustness — mean ± sd over seeds (random families)",
        &[
            "family",
            "n",
            "k",
            "seeds",
            "bfdn_mean",
            "bfdn_sd",
            "cte_mean",
            "cte_sd",
            "worst_bound_ratio",
        ],
    );
    let n = scale.size(6_000);
    // 24 seeds at full scale (doubled from the original 12) tightens the
    // sd estimates enough that the EXPERIMENTS.md "not a seed artifact"
    // claim rests on more than a dozen draws.
    let seeds: u64 = match scale {
        Scale::Quick => 4,
        Scale::Full | Scale::Huge => 24,
    };
    let ks: &[usize] = match scale {
        Scale::Quick => &[8],
        Scale::Full | Scale::Huge => &[4, 16, 64],
    };
    let fams = [
        Family::RandomRecursive,
        Family::UniformLabeled,
        Family::RandomBoundedDegree,
    ];
    // Every (family, k, seed) run is independent — each unit re-seeds
    // its own RNG — so the whole sweep fans out at seed granularity and
    // the statistics are folded back in row order afterwards.
    let configs: Vec<(Family, usize, u64)> = fams
        .iter()
        .flat_map(|&fam| {
            ks.iter()
                .flat_map(move |&k| (0..seeds).map(move |seed| (fam, k, seed)))
        })
        .collect();
    let runs = parallel::par_map(&configs, |&(fam, k, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xE13_000 + seed);
        let tree = fam.instance(n, &mut rng);
        let mut bfdn = Bfdn::new(k);
        let b = Simulator::new(&tree, k)
            .run(&mut bfdn)
            .unwrap_or_else(|e| panic!("E13 bfdn {fam} k={k} seed={seed}: {e}"))
            .rounds as f64;
        let bound = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
        assert!(b <= bound, "E13 violation: {fam} k={k} seed={seed}");
        let mut cte = Cte::new(k);
        let c = Simulator::new(&tree, k)
            .run(&mut cte)
            .unwrap_or_else(|e| panic!("E13 cte {fam} k={k} seed={seed}: {e}"))
            .rounds as f64;
        (b, c, b / bound)
    });
    for (group, chunk) in runs.chunks(seeds as usize).enumerate() {
        let (fam, k, _) = configs[group * seeds as usize];
        let bfdn_rounds: Vec<f64> = chunk.iter().map(|&(b, _, _)| b).collect();
        let cte_rounds: Vec<f64> = chunk.iter().map(|&(_, c, _)| c).collect();
        let worst_ratio = chunk.iter().map(|&(_, _, r)| r).fold(0f64, f64::max);
        let (bm, bs) = mean_sd(&bfdn_rounds);
        let (cm, cs) = mean_sd(&cte_rounds);
        table.row(vec![
            fam.name().into(),
            n.to_string(),
            k.to_string(),
            seeds.to_string(),
            format!("{bm:.0}"),
            format!("{bs:.1}"),
            format!("{cm:.0}"),
            format!("{cs:.1}"),
            format!("{worst_ratio:.3}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_are_stable_at_quick_scale() {
        let t = e13_statistics(Scale::Quick);
        assert_eq!(t.len(), 3);
        // Relative spread stays bounded on these concentrated families.
        // The 0.5 threshold is deliberately loose: at quick scale the
        // instances are small (n ≈ 125) and the heavy-tailed families
        // legitimately reach sd/mean ≈ 0.3, so a tight cap only measures
        // RNG luck, not a property of the algorithm.
        let (m, s) = (t.col("bfdn_mean"), t.col("bfdn_sd"));
        for r in 0..t.len() {
            let mean: f64 = t.cell(r, m).parse().unwrap();
            let sd: f64 = t.cell(r, s).parse().unwrap();
            assert!(sd < mean * 0.5, "row {r}: sd {sd} vs mean {mean}");
        }
    }
}
