//! Experiments E1–E13 plus the A1 ablations (see `DESIGN.md` for the
//! index).

mod ablations;
mod e01_theorem1;
mod e02_overhead;
mod e03_urn_game;
mod e04_lemma2;
mod e05_figure1;
mod e06_cte_adversarial;
mod e07_write_read;
mod e08_breakdowns;
mod e09_graphs;
mod e10_recursive;
mod e11_allocation;
mod e12_ratio_curves;
mod e13_statistics;

pub use ablations::a1_ablations;
pub use e01_theorem1::e1_theorem1_bound;
pub use e02_overhead::e2_overhead_comparison;
pub use e03_urn_game::e3_urn_game;
pub use e04_lemma2::e4_lemma2_reanchors;
pub use e05_figure1::{e5_figure1, Figure1};
pub use e06_cte_adversarial::e6_cte_adversarial;
pub use e07_write_read::e7_write_read;
pub use e08_breakdowns::e8_breakdowns;
pub use e09_graphs::e9_graphs;
pub use e10_recursive::e10_recursive;
pub use e11_allocation::e11_allocation;
pub use e12_ratio_curves::e12_ratio_curves;
pub use e13_statistics::e13_statistics;
