//! A standard cross-product sweep that can run locally or be routed
//! through a `bfdn-serve` daemon — with byte-identical output either
//! way.
//!
//! The sweep's table is built purely from [`ExploreResult`] payloads,
//! and those payloads are deterministic in their spec (seeded instance
//! generation, deterministic explorers) and JSON-exact on the wire
//! (`u64` counters verbatim; `f64` via the shortest-round-trip repr that
//! [`bfdn_service::protocol::wire_f64`] pins down). So
//! [`run_local`] and [`run_via_service`] produce byte-identical
//! [`results_table`] CSVs — the `service_determinism` integration test
//! and the CI service smoke job both assert exactly that, which is what
//! makes the daemon's content-addressed cache trustworthy.

use crate::{parallel, Scale, Table};
use bfdn_service::client::Client;
use bfdn_service::protocol::{wire_f64, ExploreResult, ExploreSpec};

/// The standard sweep grid: `algorithms × families × k × seeds` at one
/// scale-dependent size, in deterministic nesting order (24 specs).
/// [`Scale::Huge`] appends the [`huge_specs`] million-node requests.
pub fn standard_specs(scale: Scale) -> Vec<ExploreSpec> {
    let n = scale.size(2000) as u64;
    let mut specs = Vec::new();
    for algo in ["bfdn", "cte"] {
        for family in ["comb", "random-recursive", "binary"] {
            for k in [2u64, 8] {
                for seed in 0..2u64 {
                    specs.push(ExploreSpec::new(algo, family, n, k, seed));
                }
            }
        }
    }
    if scale == Scale::Huge {
        specs.extend(huge_specs());
    }
    specs
}

/// The million-node requests the huge sweep adds: single instances near
/// the top of the daemon's validation envelope (n = 10⁶ against the
/// 2·10⁶ cap), on the shallow families where that size is tractable.
/// Routed through `--via-service` this is the "one giant request"
/// configuration intra-round sharding exists for — the daemon's
/// per-request `round_threads` budget parallelizes each of these
/// internally while its bound checker re-verifies the Theorem 1 margin.
pub fn huge_specs() -> Vec<ExploreSpec> {
    vec![
        ExploreSpec::new("bfdn", "random-recursive", 1_000_000, 1024, 0),
        ExploreSpec::new("bfdn", "binary", 1_000_000, 4096, 0),
    ]
}

/// Runs every spec on this process's worker threads (the same
/// [`parallel`] substrate the daemon's batch fan-out uses).
///
/// # Errors
///
/// Returns the first spec's failure, formatted with the spec it belongs
/// to.
pub fn run_local(specs: &[ExploreSpec]) -> Result<Vec<ExploreResult>, String> {
    parallel::par_map(specs, |spec| {
        bfdn_service::exec::run_spec(spec)
            .map(|(result, _manifest)| result)
            .map_err(|e| format!("{}: {e}", spec.canonical()))
    })
    .into_iter()
    .collect()
}

/// Routes the whole sweep through a serving daemon as one batch request;
/// returns the results (in request order) plus the server's cache
/// hit/miss split.
///
/// # Errors
///
/// Formats transport and server errors as strings.
pub fn run_via_service(
    addr: &str,
    specs: Vec<ExploreSpec>,
) -> Result<(Vec<ExploreResult>, u64, u64), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    client.batch(specs).map_err(|e| e.to_string())
}

/// Routes the sweep through a shard cluster: specs are grouped by their
/// home shard on the consistent-hash ring, issued as per-shard batches,
/// and reassembled in request order. Dead shards are failed over
/// automatically, and peer cache-fill means a re-routed spec is usually
/// copied, not recomputed — so the returned results (and therefore the
/// [`results_table`] CSV) are byte-identical to [`run_local`] and
/// [`run_via_service`], which the `cluster_determinism` integration
/// test asserts.
///
/// # Errors
///
/// Formats transport and cluster errors as strings.
pub fn run_via_cluster(
    shards: &[String],
    specs: Vec<ExploreSpec>,
) -> Result<(Vec<ExploreResult>, u64, u64), String> {
    let mut client =
        bfdn_cluster::ClusterClient::new(bfdn_cluster::ClusterConfig::new(shards.iter().cloned()));
    client.batch(&specs).map_err(|e| e.to_string())
}

/// Scrapes the daemon's metrics over the wire protocol and condenses
/// the series a sweep run cares about — request mix, cache hit/miss
/// split, the persistent-store tier, and the bound-margin aggregates
/// re-checking Theorem 1 / Lemma 2 across everything the daemon has
/// served.
///
/// # Errors
///
/// Formats transport and server errors as strings.
pub fn service_telemetry_summary(addr: &str) -> Result<String, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let text = client.metrics().map_err(|e| e.to_string())?;
    let interesting = [
        "bfdn_requests_total",
        "bfdn_cache_hits_total",
        "bfdn_cache_misses_total",
        "bfdn_cache_entries",
        "bfdn_store_", // the persistent-store tier: hits, bytes, compactions
        "bfdn_bound_checked_total",
        "bfdn_bound_violations_total",
        "bfdn_bound_margin_worst",
    ];
    let picked: Vec<&str> = text
        .lines()
        .filter(|line| {
            !line.starts_with('#') && interesting.iter().any(|name| line.starts_with(name))
        })
        .collect();
    Ok(picked.join("\n"))
}

/// Summarises a `bfdn-load --report-json` file next to a sweep run, so
/// one invocation can show both the correctness grid and how the same
/// daemon held up under load. Accepts the report text, returns the
/// lines to print, or an error naming what is malformed.
pub fn loadgen_report_summary(text: &str) -> Result<String, String> {
    use bfdn_service::jsonval::Json;
    let json = Json::parse(text).map_err(|e| format!("report is not valid JSON: {e}"))?;
    let str_of = |key: &str| {
        json.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("report missing `{key}`"))
    };
    let profile = str_of("profile")?;
    let seed = json
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("report missing `seed`")?;
    let pass = json
        .get("pass")
        .and_then(Json::as_bool)
        .ok_or("report missing `pass`")?;
    let mut lines = vec![format!(
        "load: profile={profile} seed={seed} verdict={}",
        if pass { "pass" } else { "FAIL" }
    )];
    if let (Some(ops), Some(ok), Some(rps)) = (
        json.get("workload_ops").and_then(Json::as_u64),
        json.get("workload_ok").and_then(Json::as_u64),
        json.get("throughput_rps").and_then(Json::as_f64),
    ) {
        lines.push(format!("load: {ok}/{ops} ops ok at {rps:.1} req/s"));
    }
    if let Some(daemon) = json.get("daemon").filter(|d| !d.is_null()) {
        let violations = daemon.get("bound_violations").and_then(Json::as_f64);
        let checked = daemon.get("bound_checked").and_then(Json::as_f64);
        if let (Some(violations), Some(checked)) = (violations, checked) {
            lines.push(format!(
                "load: bounds {checked:.0} checked, {violations:.0} violated"
            ));
        }
        if let Some(ratio) = daemon.get("cache_hit_ratio").and_then(Json::as_f64) {
            lines.push(format!("load: cache hit ratio {ratio:.2}"));
        }
    }
    for class in json
        .get("classes")
        .and_then(Json::as_arr)
        .unwrap_or_default()
    {
        let (Some(name), Some(count)) = (
            class.get("class").and_then(Json::as_str),
            class.get("count").and_then(Json::as_u64),
        ) else {
            continue;
        };
        let quantile = |key: &str| {
            class
                .get(key)
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite())
                .map(|v| format!("{:.1}ms", v * 1e3))
                .unwrap_or_else(|| "n/a".into())
        };
        lines.push(format!(
            "load: {name:<24} count={count:<5} p50={} p99={}",
            quantile("p50_s"),
            quantile("p99_s")
        ));
        for entry in class
            .get("slow_traces")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let (Some(trace), Some(latency)) = (
                entry.get("trace").and_then(Json::as_str),
                entry.get("latency_s").and_then(Json::as_f64),
            ) else {
                continue;
            };
            lines.push(format!(
                "load:   slowest {:.1}ms trace={trace}",
                latency * 1e3
            ));
        }
    }
    if let (Some(recorded), Some(dropped)) = (
        json.get("trace_recorded").and_then(Json::as_u64),
        json.get("trace_dropped").and_then(Json::as_u64),
    ) {
        lines.push(format!(
            "load: daemon spans recorded={recorded} dropped={dropped}"
        ));
    }
    Ok(lines.join("\n"))
}

/// Renders results as the sweep table, one row per spec in input order.
pub fn results_table(results: &[ExploreResult]) -> Table {
    let mut t = Table::new(
        "sweep: rounds vs the Theorem 1 envelope across the standard grid",
        &[
            "algorithm",
            "family",
            "n",
            "k",
            "seed",
            "nodes",
            "depth",
            "max_degree",
            "rounds",
            "moves",
            "edge_events",
            "bound",
            "margin",
        ],
    );
    for r in results {
        t.row(vec![
            r.spec.algorithm.clone(),
            r.spec.family.clone(),
            r.spec.n.to_string(),
            r.spec.k.to_string(),
            r.spec.seed.to_string(),
            r.nodes.to_string(),
            r.depth.to_string(),
            r.max_degree.to_string(),
            r.metrics.rounds.to_string(),
            r.metrics.moves.to_string(),
            r.metrics.edge_events.to_string(),
            wire_f64(r.bound),
            wire_f64(r.margin),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_standard_grid_is_deterministic_and_well_formed() {
        let specs = standard_specs(Scale::Quick);
        assert_eq!(specs.len(), 24);
        assert_eq!(specs, standard_specs(Scale::Quick));
        for spec in &specs {
            bfdn_service::exec::validate(spec).expect("grid spec validates");
        }
        // Full scale only changes n.
        let full = standard_specs(Scale::Full);
        assert!(full.iter().all(|s| s.n == 2000));
    }

    #[test]
    fn local_sweep_fills_the_table_in_grid_order() {
        let specs: Vec<ExploreSpec> = standard_specs(Scale::Quick).into_iter().take(4).collect();
        let results = run_local(&specs).expect("local sweep");
        let t = results_table(&results);
        assert_eq!(t.len(), 4);
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(t.cell(i, t.col("algorithm")), spec.algorithm);
            assert_eq!(t.cell(i, t.col("seed")), spec.seed.to_string());
            let margin: f64 = t.cell(i, t.col("margin")).parse().unwrap();
            assert!(margin >= 0.0, "Theorem 1 envelope holds on row {i}");
        }
    }

    #[test]
    fn loadgen_report_summary_extracts_the_verdict_and_quantiles() {
        let report = r#"{"profile":"quick","seed":7,"workload_ops":48,"workload_ok":48,
            "throughput_rps":24.0,
            "daemon":{"bound_checked":40,"bound_violations":0,"cache_hit_ratio":0.25},
            "trace_recorded":96,"trace_dropped":0,
            "classes":[{"class":"open","count":24,"p50_s":0.004,"p99_s":0.021,
                        "slow_traces":[{"trace":"00000000000000ab","latency_s":0.021}]},
                       {"class":"closed","count":24,"p50_s":0.003,"p99_s":null}],
            "pass":true}"#;
        let summary = loadgen_report_summary(report).expect("well-formed report");
        assert!(summary.contains("profile=quick seed=7 verdict=pass"));
        assert!(summary.contains("48/48 ops ok at 24.0 req/s"));
        assert!(summary.contains("bounds 40 checked, 0 violated"));
        assert!(summary.contains("cache hit ratio 0.25"));
        assert!(summary.contains("open"));
        assert!(summary.contains("p50=4.0ms"));
        assert!(summary.contains("p99=n/a"), "null quantile renders as n/a");
        assert!(summary.contains("slowest 21.0ms trace=00000000000000ab"));
        assert!(summary.contains("daemon spans recorded=96 dropped=0"));

        assert!(loadgen_report_summary("not json").is_err());
        assert!(
            loadgen_report_summary(r#"{"profile":"quick"}"#)
                .unwrap_err()
                .contains("seed"),
            "missing fields are named"
        );
    }
}
