//! Minimal aligned-table rendering (no external dependencies).

use std::fmt;

/// A printable results table with a title, column headers and rows.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (`row`, `col`), for assertions in tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Column index by header name.
    ///
    /// # Panics
    ///
    /// Panics if the header does not exist.
    pub fn col(&self, header: &str) -> usize {
        self.headers
            .iter()
            .position(|h| h == header)
            .unwrap_or_else(|| panic!("no column {header}"))
    }

    /// Emits CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &sep)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| 1 |"));
        assert_eq!(t.cell(0, t.col("bb")), "2");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["3".into(), "4".into()]);
        assert_eq!(t.to_csv(), "x,y\n3,4\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["x"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
