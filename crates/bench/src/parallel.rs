//! Deterministic work-sharing for the experiment harness.
//!
//! [`par_map`] fans independent work items out over `std::thread::scope`
//! workers pulling from an atomic queue, then reassembles the results in
//! item order — so a table built from the output is byte-identical to
//! the sequential run no matter how the items were scheduled. Experiment
//! functions stay pure (tree generation keeps its sequential RNG
//! consumption order; only the simulations fan out), which is what lets
//! the committed `EXPERIMENTS.md` numbers survive the parallel harness.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count: the `BFDN_THREADS` environment variable when set (and
/// at least 1), otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("BFDN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, running items across [`num_threads`]
/// scoped threads (the calling thread participates as one worker), and
/// returns the results **in item order** regardless of scheduling.
///
/// A panic in any `f` call (experiments assert paper bounds by
/// panicking) is propagated to the caller with its original payload.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = num_threads().min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads - 1)
            .map(|_| s.spawn(|| drain_queue(&next, items, &f)))
            .collect();
        let mut all = drain_queue(&next, items, &f);
        for h in handles {
            match h.join() {
                Ok(part) => all.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// One worker: claim the next unclaimed index until the queue is dry,
/// tagging each result with its item index for the stable merge.
fn drain_queue<T, R>(
    next: &AtomicUsize,
    items: &[T],
    f: &(impl Fn(&T) -> R + Sync),
) -> Vec<(usize, R)> {
    let mut out = Vec::new();
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= items.len() {
            return out;
        }
        out.push((i, f(&items[i])));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = par_map(&items, |&i| {
            // Skew the per-item cost so late items often finish first.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * 3
        });
        assert_eq!(out, (0..97).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_panics_propagate_with_their_payload() {
        let res = std::panic::catch_unwind(|| {
            par_map(&[1u32, 2, 3, 4], |&x| {
                assert!(x != 3, "bound violated on item {x}");
                x
            })
        });
        let payload = res.expect_err("the panic must cross par_map");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("bound violated on item 3"), "got: {msg}");
    }

    #[test]
    fn matches_sequential_map_on_heavier_closures() {
        let items: Vec<u64> = (0..64).collect();
        let sequential: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xABCD).collect();
        assert_eq!(par_map(&items, |&x| x.wrapping_mul(x) ^ 0xABCD), sequential);
    }
}
