//! Ablation benches for the design choices called out in `DESIGN.md`.
//!
//! Criterion measures wall-clock; the *round counts* of the same arms
//! are tabulated by `experiments -- ablations` — both matter: a variant
//! could save rounds while being computationally heavier.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bfdn::{Bfdn, BfdnL, ReanchorRule, SelectionOrder};
use bfdn_sim::Simulator;
use bfdn_trees::generators;
use rand::SeedableRng;

fn bench_reanchor_rules(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let tree = generators::uniform_labeled(2000, &mut rng);
    let k = 16;
    let mut group = c.benchmark_group("ablation_reanchor_rule");
    group.sample_size(10);
    for (name, rule) in [
        ("least_loaded", ReanchorRule::LeastLoaded),
        ("first_candidate", ReanchorRule::FirstCandidate),
        ("round_robin", ReanchorRule::RoundRobin),
        ("random", ReanchorRule::Random(3)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut algo = Bfdn::builder(k).reanchor_rule(rule.clone()).build();
                black_box(Simulator::new(&tree, k).run(&mut algo).unwrap().rounds)
            })
        });
    }
    group.finish();
}

fn bench_selection_order(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(22);
    let tree = generators::random_recursive(3000, &mut rng);
    let k = 16;
    let mut group = c.benchmark_group("ablation_selection_order");
    group.sample_size(10);
    for (name, order) in [
        ("fixed", SelectionOrder::Fixed),
        ("rotating", SelectionOrder::Rotating),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut algo = Bfdn::builder(k).selection_order(order).build();
                black_box(Simulator::new(&tree, k).run(&mut algo).unwrap().rounds)
            })
        });
    }
    group.finish();
}

fn bench_shortcut(c: &mut Criterion) {
    let tree = generators::caterpillar(200, 16);
    let k = 16;
    let mut group = c.benchmark_group("ablation_shortcut");
    group.sample_size(10);
    for (name, shortcut) in [("root_return", false), ("shortcut", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut algo = Bfdn::builder(k).shortcut(shortcut).build();
                black_box(Simulator::new(&tree, k).run(&mut algo).unwrap().rounds)
            })
        });
    }
    group.finish();
}

fn bench_depth_schedule(c: &mut Criterion) {
    let tree = generators::caterpillar(300, 16);
    let k = 16;
    let mut group = c.benchmark_group("ablation_depth_schedule");
    group.sample_size(10);
    for (name, base) in [("doubling", 2u32), ("quadrupling", 4u32)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut algo = BfdnL::with_growth(k, 2, base);
                black_box(Simulator::new(&tree, k).run(&mut algo).unwrap().rounds)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reanchor_rules,
    bench_selection_order,
    bench_shortcut,
    bench_depth_schedule
);
criterion_main!(benches);
