//! Wall-clock cost of the Section 3 machinery: game playouts, the exact
//! dynamic program, and the allocation scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use urn_game::allocation::{run, ReassignPolicy};
use urn_game::{play, DrainAdversary, GameValue, GreedyAdversary, LeastLoadedPlayer, UrnGame};

fn bench_playouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("urn_game_playout");
    group.sample_size(20);
    for k in [64usize, 512] {
        group.bench_with_input(BenchmarkId::new("greedy", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    play(
                        UrnGame::new(k, k),
                        &mut LeastLoadedPlayer,
                        &mut GreedyAdversary,
                    )
                    .steps,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("drain", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    play(
                        UrnGame::new(k, k),
                        &mut LeastLoadedPlayer,
                        &mut DrainAdversary,
                    )
                    .steps,
                )
            })
        });
    }
    group.finish();
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("urn_game_dp");
    group.sample_size(10);
    for k in [64usize, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(GameValue::new(k, k).value()))
        });
    }
    group.finish();
}

fn bench_allocation(c: &mut Criterion) {
    let k = 256;
    let lengths: Vec<u64> = (0..k).map(|i| 1u64 << (i % 10)).collect();
    let mut group = c.benchmark_group("allocation_geometric_k256");
    group.sample_size(20);
    group.bench_function("least_crowded", |b| {
        b.iter(|| black_box(run(&lengths, k, ReassignPolicy::LeastCrowded).switches))
    });
    group.bench_function("most_crowded", |b| {
        b.iter(|| black_box(run(&lengths, k, ReassignPolicy::MostCrowded).switches))
    });
    group.finish();
}

criterion_group!(benches, bench_playouts, bench_dp, bench_allocation);
criterion_main!(benches);
