//! Wall-clock cost of one full exploration per algorithm — the
//! implementation-throughput companion to experiments E1/E2/E7/E10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bfdn::{Bfdn, BfdnL, WriteReadBfdn};
use bfdn_baselines::{Cte, OfflineSplit};
use bfdn_sim::Simulator;
use bfdn_trees::generators;
use rand::SeedableRng;

fn bench_algorithms(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let tree = generators::random_recursive(4000, &mut rng);
    let k = 16;
    let mut group = c.benchmark_group("explore_random_recursive_n4000_k16");
    group.sample_size(10);
    group.bench_function("bfdn", |b| {
        b.iter(|| {
            let mut algo = Bfdn::new(k);
            black_box(Simulator::new(&tree, k).run(&mut algo).unwrap().rounds)
        })
    });
    group.bench_function("bfdn_write_read", |b| {
        b.iter(|| {
            let mut algo = WriteReadBfdn::new(k);
            black_box(Simulator::new(&tree, k).run(&mut algo).unwrap().rounds)
        })
    });
    group.bench_function("bfdn_l2", |b| {
        b.iter(|| {
            let mut algo = BfdnL::new(k, 2);
            black_box(Simulator::new(&tree, k).run(&mut algo).unwrap().rounds)
        })
    });
    group.bench_function("cte", |b| {
        b.iter(|| {
            let mut algo = Cte::new(k);
            black_box(Simulator::new(&tree, k).run(&mut algo).unwrap().rounds)
        })
    });
    group.bench_function("offline_split_plan", |b| {
        b.iter(|| black_box(OfflineSplit::plan(&tree, k).rounds()))
    });
    group.finish();
}

fn bench_k_scaling(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let tree = generators::uniform_labeled(3000, &mut rng);
    let mut group = c.benchmark_group("bfdn_k_scaling_n3000");
    group.sample_size(10);
    for k in [1usize, 8, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut algo = Bfdn::new(k);
                black_box(Simulator::new(&tree, k).run(&mut algo).unwrap().rounds)
            })
        });
    }
    group.finish();
}

fn bench_graph_grid(c: &mut Criterion) {
    use bfdn::GraphBfdn;
    use bfdn_trees::grid::{GridGraph, Rect};
    let grid = GridGraph::new(40, 40, &[Rect::new(10, 10, 25, 20)]);
    let mut group = c.benchmark_group("graph_bfdn_grid_40x40");
    group.sample_size(10);
    for k in [4usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    GraphBfdn::explore(grid.graph(), grid.origin(), k)
                        .unwrap()
                        .rounds,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_k_scaling, bench_graph_grid);
criterion_main!(benches);
