//! Wall-clock cost of the substrates: tree generation, fog-of-war
//! maintenance and the simulator's round loop overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bfdn_sim::{Explorer, Move, RoundContext, Simulator};
use bfdn_trees::{generators, NodeId, PartialTree};
use rand::SeedableRng;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_n20000");
    group.sample_size(20);
    group.bench_function("random_recursive", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| black_box(generators::random_recursive(20_000, &mut rng).len()))
    });
    group.bench_function("uniform_labeled_prufer", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        b.iter(|| black_box(generators::uniform_labeled(20_000, &mut rng).len()))
    });
    group.bench_function("comb", |b| {
        b.iter(|| black_box(generators::comb(141, 141).len()))
    });
    group.finish();
}

fn bench_partial_tree_reveal(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let tree = generators::random_recursive(20_000, &mut rng);
    c.bench_function("partial_tree_full_reveal_n20000", |b| {
        b.iter(|| {
            let mut pt = PartialTree::new(tree.len(), tree.degree(NodeId::ROOT));
            let mut queue = std::collections::VecDeque::from([NodeId::ROOT]);
            while let Some(u) = queue.pop_front() {
                for (port, child) in tree.child_ports(u) {
                    pt.attach(u, port, child, tree.degree(child));
                    queue.push_back(child);
                }
            }
            black_box(pt.num_explored())
        })
    });
}

/// A do-nothing-useful explorer that walks one robot down and up — pure
/// simulator overhead.
struct PingPong;
impl Explorer for PingPong {
    fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
        let at = ctx.positions[0];
        out[0] = match ctx.tree.dangling_ports(at).next() {
            Some(p) => Move::Down(p),
            None => Move::Up,
        };
    }
}

fn bench_simulator_overhead(c: &mut Criterion) {
    let tree = generators::path(5_000);
    c.bench_function("simulator_round_loop_path5000", |b| {
        b.iter(|| {
            let outcome = Simulator::new(&tree, 1).run(&mut PingPong).unwrap();
            black_box(outcome.rounds)
        })
    });
}

criterion_group!(
    benches,
    bench_generators,
    bench_partial_tree_reveal,
    bench_simulator_overhead
);
criterion_main!(benches);
