//! Live margins against the paper's bounds.

use crate::{Event, EventSink};

/// The bound envelopes a [`BoundTracker`] measures against.
///
/// The numeric values come from the caller (typically
/// `bfdn::theorem1_bound`, `bfdn::lemma2_bound` and
/// `urn_game::theorem3_bound`) so this crate stays free of the
/// algorithm crates; a `None` disables that margin.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BoundConfig {
    /// Theorem 1's round envelope `2n/k + D²(min{log Δ, log k} + 3)`.
    pub rounds: Option<f64>,
    /// Lemma 2's per-depth reanchor cap `k·(min{log k, log Δ} + 3)`.
    pub reanchors_per_depth: Option<f64>,
    /// Theorem 3's urn-game step cap `k·min{log Δ, log k} + 2k`.
    pub urn_steps: Option<f64>,
}

/// One point of the margin time series: how much room was left under
/// each configured bound when the sample was taken.
///
/// A negative margin is a bound violation — for the paper's algorithms
/// it never happens, which is exactly what the telemetry lets a run
/// prove about itself.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MarginSample {
    /// Round (or urn-game step) at which the sample was taken.
    pub at: u64,
    /// `rounds_bound - rounds_so_far`.
    pub rounds: Option<f64>,
    /// `reanchor_bound - max_d reanchors_at_depth(d)` over depths ≥ 1.
    pub reanchors: Option<f64>,
    /// `urn_bound - urn_steps_so_far`.
    pub urn_steps: Option<f64>,
}

impl MarginSample {
    /// Returns `true` if every configured margin is non-negative.
    pub fn non_negative(&self) -> bool {
        [self.rounds, self.reanchors, self.urn_steps]
            .into_iter()
            .flatten()
            .all(|m| m >= 0.0)
    }
}

/// An [`EventSink`] that folds the event stream into live bound margins.
///
/// On every `RoundCompleted` (and every `UrnStep`, for urn-game runs)
/// the tracker appends a [`MarginSample`] comparing the counters
/// accumulated so far against the configured [`BoundConfig`]; the full
/// series is kept for time-series export and the final sample feeds the
/// run manifest.
///
/// # Example
///
/// ```
/// use bfdn_obs::{BoundConfig, BoundTracker, Event, EventSink};
///
/// let mut t = BoundTracker::new(BoundConfig {
///     rounds: Some(10.0),
///     ..BoundConfig::default()
/// });
/// t.emit(&Event::RoundCompleted { round: 0, explored: 2, moved: 1, stalled: 0 });
/// assert_eq!(t.series()[0].rounds, Some(9.0));
/// assert!(t.all_non_negative());
/// ```
#[derive(Clone, Debug)]
pub struct BoundTracker {
    config: BoundConfig,
    rounds: u64,
    urn_steps: u64,
    edges_discovered: u64,
    stalls: u64,
    reanchors_by_depth: Vec<u64>,
    series: Vec<MarginSample>,
}

impl BoundTracker {
    /// A tracker measuring against `config`.
    pub fn new(config: BoundConfig) -> Self {
        BoundTracker {
            config,
            rounds: 0,
            urn_steps: 0,
            edges_discovered: 0,
            stalls: 0,
            reanchors_by_depth: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Urn-game steps observed so far.
    pub fn urn_steps(&self) -> u64 {
        self.urn_steps
    }

    /// Edge discoveries observed so far.
    pub fn edges_discovered(&self) -> u64 {
        self.edges_discovered
    }

    /// Stall events observed so far.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// `Reanchor` events per anchor depth (index = depth), mirroring
    /// `Bfdn::reanchors_by_depth`.
    pub fn reanchors_by_depth(&self) -> &[u64] {
        &self.reanchors_by_depth
    }

    /// Total `Reanchor` events observed.
    pub fn total_reanchors(&self) -> u64 {
        self.reanchors_by_depth.iter().sum()
    }

    /// The margin time series, one sample per observed round (or urn
    /// step).
    pub fn series(&self) -> &[MarginSample] {
        &self.series
    }

    /// The most recent margins, if anything was observed.
    pub fn current(&self) -> Option<MarginSample> {
        self.series.last().copied()
    }

    /// Returns `true` if every sample so far respected every configured
    /// bound.
    pub fn all_non_negative(&self) -> bool {
        self.series.iter().all(MarginSample::non_negative)
    }

    fn sample(&mut self, at: u64) {
        // Lemma 2 concerns depths 1..D-1; depth 0 is the root fallback.
        let worst_reanchors = self
            .reanchors_by_depth
            .iter()
            .skip(1)
            .copied()
            .max()
            .unwrap_or(0);
        self.series.push(MarginSample {
            at,
            rounds: self.config.rounds.map(|b| b - self.rounds as f64),
            reanchors: self
                .config
                .reanchors_per_depth
                .map(|b| b - worst_reanchors as f64),
            urn_steps: self.config.urn_steps.map(|b| b - self.urn_steps as f64),
        });
    }
}

impl EventSink for BoundTracker {
    fn emit(&mut self, event: &Event) {
        match *event {
            Event::RoundCompleted { round, .. } => {
                self.rounds = self.rounds.max(round + 1);
                self.sample(round);
            }
            Event::Reanchor { depth, .. } => {
                let d = depth as usize;
                if self.reanchors_by_depth.len() <= d {
                    self.reanchors_by_depth.resize(d + 1, 0);
                }
                self.reanchors_by_depth[d] += 1;
            }
            Event::EdgeDiscovered { .. } => self.edges_discovered += 1,
            Event::RobotStalled { .. } => self.stalls += 1,
            Event::UrnStep { step, .. } => {
                self.urn_steps = self.urn_steps.max(step + 1);
                self.sample(step);
            }
            Event::PhaseTimer { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(round: u64) -> Event {
        Event::RoundCompleted {
            round,
            explored: 0,
            moved: 0,
            stalled: 0,
        }
    }

    #[test]
    fn rounds_margin_decreases_by_one_per_round() {
        let mut t = BoundTracker::new(BoundConfig {
            rounds: Some(3.0),
            ..BoundConfig::default()
        });
        for r in 0..4 {
            t.emit(&round(r));
        }
        let margins: Vec<f64> = t.series().iter().map(|s| s.rounds.unwrap()).collect();
        assert_eq!(margins, vec![2.0, 1.0, 0.0, -1.0]);
        assert!(!t.all_non_negative());
        assert_eq!(t.rounds(), 4);
    }

    #[test]
    fn reanchor_margin_tracks_worst_depth() {
        let mut t = BoundTracker::new(BoundConfig {
            reanchors_per_depth: Some(2.0),
            ..BoundConfig::default()
        });
        for depth in [1, 2, 2, 0] {
            t.emit(&Event::Reanchor {
                robot: 0,
                depth,
                anchor: 1,
            });
        }
        t.emit(&round(0));
        // Depth 0 (the root) is excluded; the worst counted depth is 2
        // with two reanchors.
        assert_eq!(t.current().unwrap().reanchors, Some(0.0));
        assert_eq!(t.reanchors_by_depth(), &[1, 1, 2]);
        assert_eq!(t.total_reanchors(), 4);
        assert!(t.all_non_negative());
    }

    #[test]
    fn urn_margin_samples_per_step() {
        let mut t = BoundTracker::new(BoundConfig {
            urn_steps: Some(2.5),
            ..BoundConfig::default()
        });
        t.emit(&Event::UrnStep {
            step: 0,
            from: 0,
            to: 1,
        });
        t.emit(&Event::UrnStep {
            step: 1,
            from: 1,
            to: 0,
        });
        assert_eq!(t.urn_steps(), 2);
        assert_eq!(t.current().unwrap().urn_steps, Some(0.5));
    }

    #[test]
    fn unconfigured_margins_stay_none() {
        let mut t = BoundTracker::new(BoundConfig::default());
        t.emit(&round(0));
        let s = t.current().unwrap();
        assert_eq!((s.rounds, s.reanchors, s.urn_steps), (None, None, None));
        assert!(s.non_negative());
    }

    #[test]
    fn counts_edges_and_stalls() {
        let mut t = BoundTracker::new(BoundConfig::default());
        t.emit(&Event::EdgeDiscovered {
            round: 0,
            robot: 0,
            parent: 0,
            child: 1,
            depth: 1,
        });
        t.emit(&Event::RobotStalled {
            round: 0,
            robot: 1,
            at: 0,
        });
        assert_eq!((t.edges_discovered(), t.stalls()), (1, 1));
    }
}
