//! Structured observability for the BFDN reproduction.
//!
//! The workspace reproduces *quantitative* claims — Theorem 1's
//! `2n/k + D²(min{log Δ, log k}+3)` round count, Lemma 2's per-depth
//! reanchor cap, Theorem 3's urn-game step bound — and this crate makes
//! the quantities behind those bounds observable while a run is in
//! flight. Instrumented components (the simulator round loop, BFDN's
//! `Reanchor` procedure, the urn-game step loop, the bench harness)
//! emit typed [`Event`]s into an [`EventSink`]:
//!
//! - [`NullSink`] — the zero-cost default: the simulator is generic over
//!   its sink, so an unobserved run monomorphizes to the uninstrumented
//!   hot path.
//! - [`JsonlSink`] — streams one JSON object per event to any writer.
//! - [`BoundTracker`] — computes live margins against the paper's bounds
//!   every round and keeps the time series.
//! - [`MemorySink`], [`FanOut`], [`StderrLog`] — test, composition and
//!   logging helpers.
//!
//! Long-lived processes (the `bfdn-serve` daemon) aggregate across many
//! runs through the [`metrics`] module: lock-free counters, gauges and
//! fixed-bucket histograms in a shared registry, rendered as Prometheus
//! text exposition. Per-request causality — "why was *this* request
//! slow" — comes from the [`tracing`] module: span trees in a bounded
//! non-blocking ring, exported as JSONL or Perfetto-loadable Chrome
//! trace-event JSON.
//!
//! A finished run is summarized by a [`RunManifest`] (algorithm,
//! workload, seed, `n`, `D`, `Δ`, `k`, git revision, per-phase
//! wall-clock from [`Phases`], final metrics, final margins) serialized
//! as a single JSON document next to the experiment CSVs.
//!
//! The crate is dependency-free (std only); JSON is hand-rolled in
//! [`json`] because the workspace deliberately carries no format
//! dependency.
//!
//! # Example
//!
//! ```
//! use bfdn_obs::{Event, EventSink, MemorySink};
//!
//! let mut sink = MemorySink::default();
//! sink.emit(&Event::Reanchor { robot: 0, depth: 2, anchor: 17 });
//! assert_eq!(sink.events().len(), 1);
//! assert_eq!(sink.count(|e| matches!(e, Event::Reanchor { .. })), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bound;
mod event;
pub mod fleet;
pub mod json;
mod manifest;
pub mod metrics;
mod phase;
mod sink;
pub mod tracing;

pub use bound::{BoundConfig, BoundTracker, MarginSample};
pub use event::Event;
pub use fleet::FleetAggregator;
pub use manifest::{git_revision, RunManifest};
pub use metrics::{register_build_info, Counter, Gauge, Histogram, Registry};
pub use phase::Phases;
pub use sink::{EventSink, FanOut, JsonlSink, LogLevel, MemorySink, NullSink, StderrLog};
pub use tracing::{SpanRecord, SpanRecorder, SpanSink, TraceFormat, TraceWriter, Tracer};
