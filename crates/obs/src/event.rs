//! The typed event vocabulary shared by all instrumented components.

use crate::json::JsonObject;
use std::fmt;

/// One observable occurrence inside an instrumented run.
///
/// Node, robot and urn identifiers are plain integers (the dense indices
/// of `bfdn-trees`' `NodeId` and the simulator's robot slots) so this
/// crate stays dependency-free and the urn game — which has no tree —
/// can share the vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A synchronous simulation round finished.
    RoundCompleted {
        /// Round number (0-based, matching `RoundRecord::round`).
        round: u64,
        /// Explored nodes after the round.
        explored: u64,
        /// Robots that traversed an edge this round.
        moved: u32,
        /// Robots stalled by the movement adversary this round.
        stalled: u32,
    },
    /// BFDN's `Reanchor` procedure returned an open node (the root
    /// fallback once the tree is explored is *not* an event — the
    /// per-depth counts mirror `Bfdn::reanchors_by_depth` exactly).
    Reanchor {
        /// The reanchored robot.
        robot: u32,
        /// Depth of the returned anchor (what Lemma 2 counts).
        depth: u32,
        /// Dense node index of the returned anchor.
        anchor: u32,
    },
    /// A dangling edge was traversed for the first time.
    EdgeDiscovered {
        /// Round in which the traversal happened.
        round: u64,
        /// The discovering robot.
        robot: u32,
        /// Dense node index of the parent endpoint.
        parent: u32,
        /// Dense node index of the newly revealed child.
        child: u32,
        /// Depth of the child.
        depth: u32,
    },
    /// The movement adversary stalled a robot this round.
    RobotStalled {
        /// Round of the stall.
        round: u64,
        /// The stalled robot.
        robot: u32,
        /// Dense node index of where it stood.
        at: u32,
    },
    /// One step of the balls-in-urns game (Section 3): the adversary
    /// picked a ball from `from`, the player moved it to `to`.
    UrnStep {
        /// Step number (0-based).
        step: u64,
        /// The urn the adversary drained.
        from: u32,
        /// The urn the player refilled.
        to: u32,
    },
    /// A named phase of a harness run finished (workload generation, the
    /// exploration itself, table rendering, …).
    PhaseTimer {
        /// Phase name.
        phase: &'static str,
        /// Wall-clock duration in nanoseconds.
        nanos: u64,
    },
}

impl Event {
    /// The snake_case tag used as the `event` field of the JSONL
    /// encoding.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::RoundCompleted { .. } => "round_completed",
            Event::Reanchor { .. } => "reanchor",
            Event::EdgeDiscovered { .. } => "edge_discovered",
            Event::RobotStalled { .. } => "robot_stalled",
            Event::UrnStep { .. } => "urn_step",
            Event::PhaseTimer { .. } => "phase_timer",
        }
    }

    /// Serializes the event as a single-line JSON object (no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("event", self.tag());
        match *self {
            Event::RoundCompleted {
                round,
                explored,
                moved,
                stalled,
            } => {
                o.u64("round", round)
                    .u64("explored", explored)
                    .u64("moved", moved.into())
                    .u64("stalled", stalled.into());
            }
            Event::Reanchor {
                robot,
                depth,
                anchor,
            } => {
                o.u64("robot", robot.into())
                    .u64("depth", depth.into())
                    .u64("anchor", anchor.into());
            }
            Event::EdgeDiscovered {
                round,
                robot,
                parent,
                child,
                depth,
            } => {
                o.u64("round", round)
                    .u64("robot", robot.into())
                    .u64("parent", parent.into())
                    .u64("child", child.into())
                    .u64("depth", depth.into());
            }
            Event::RobotStalled { round, robot, at } => {
                o.u64("round", round)
                    .u64("robot", robot.into())
                    .u64("at", at.into());
            }
            Event::UrnStep { step, from, to } => {
                o.u64("step", step)
                    .u64("from", from.into())
                    .u64("to", to.into());
            }
            Event::PhaseTimer { phase, nanos } => {
                o.str("phase", phase).u64("nanos", nanos);
            }
        }
        o.finish()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::RoundCompleted {
                round,
                explored,
                moved,
                stalled,
            } => write!(
                f,
                "round {round} complete: {explored} explored, {moved} moved, {stalled} stalled"
            ),
            Event::Reanchor {
                robot,
                depth,
                anchor,
            } => write!(f, "robot {robot} reanchored to n{anchor} at depth {depth}"),
            Event::EdgeDiscovered {
                round,
                robot,
                parent,
                child,
                depth,
            } => write!(
                f,
                "round {round}: robot {robot} discovered n{parent}->n{child} (depth {depth})"
            ),
            Event::RobotStalled { round, robot, at } => {
                write!(f, "round {round}: robot {robot} stalled at n{at}")
            }
            Event::UrnStep { step, from, to } => {
                write!(f, "urn step {step}: ball moved {from} -> {to}")
            }
            Event::PhaseTimer { phase, nanos } => {
                write!(f, "phase {phase} took {:.3}ms", nanos as f64 / 1e6)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_encodes_every_variant() {
        let events = [
            Event::RoundCompleted {
                round: 3,
                explored: 10,
                moved: 4,
                stalled: 1,
            },
            Event::Reanchor {
                robot: 2,
                depth: 5,
                anchor: 40,
            },
            Event::EdgeDiscovered {
                round: 1,
                robot: 0,
                parent: 0,
                child: 1,
                depth: 1,
            },
            Event::RobotStalled {
                round: 9,
                robot: 7,
                at: 3,
            },
            Event::UrnStep {
                step: 0,
                from: 1,
                to: 2,
            },
            Event::PhaseTimer {
                phase: "explore",
                nanos: 1_500_000,
            },
        ];
        for e in events {
            let json = e.to_json();
            assert!(
                json.starts_with(&format!("{{\"event\":\"{}\"", e.tag())),
                "{json}"
            );
            assert!(json.ends_with('}'), "{json}");
            // Every variant also renders for the stderr log.
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn reanchor_json_shape() {
        let e = Event::Reanchor {
            robot: 1,
            depth: 2,
            anchor: 17,
        };
        assert_eq!(
            e.to_json(),
            r#"{"event":"reanchor","robot":1,"depth":2,"anchor":17}"#
        );
    }
}
