//! Run manifests: one JSON document summarizing a finished run.

use crate::json::{u64_array, JsonObject};
use crate::Phases;
use std::io;
use std::path::{Path, PathBuf};

/// Everything needed to attribute, reproduce and audit one run:
/// algorithm, workload, seed, instance parameters, git revision,
/// per-phase wall-clock, final counters and final bound margins.
///
/// Written next to the experiment CSVs (`--manifest-out`) as a single
/// JSON object; the numeric fields mirror the `Metrics` counters and
/// the [`BoundTracker`](crate::BoundTracker) totals so a manifest can
/// be cross-checked against its JSONL trace.
///
/// # Example
///
/// ```
/// use bfdn_obs::RunManifest;
///
/// let mut m = RunManifest::new("bfdn", "comb");
/// m.k = 8;
/// m.metric("rounds", 42);
/// m.margin("theorem1", 17.5);
/// let json = m.to_json();
/// assert!(json.contains(r#""algorithm":"bfdn""#));
/// assert!(json.contains(r#""rounds":42"#));
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunManifest {
    /// Algorithm name (an `Explorer::name`, an experiment id, …).
    pub algorithm: String,
    /// Workload description (tree family, board shape, …).
    pub workload: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Nodes of the instance (`n`), when applicable.
    pub n: u64,
    /// Depth of the instance (`D`), when applicable.
    pub depth: u64,
    /// Maximum degree of the instance (`Δ`), when applicable.
    pub max_degree: u64,
    /// Number of robots / urns (`k`).
    pub k: u64,
    /// The git revision the binary was run from, when discoverable.
    pub git_revision: Option<String>,
    /// Per-phase wall-clock in nanoseconds, in completion order.
    pub phases: Vec<(String, u64)>,
    /// Final counters, e.g. the `Metrics` fields.
    pub metrics: Vec<(String, u64)>,
    /// Final bound margins (bound minus measured; non-negative means the
    /// envelope held).
    pub margins: Vec<(String, f64)>,
    /// `Reanchor` events per anchor depth, mirroring
    /// `Bfdn::reanchors_by_depth`.
    pub reanchors_by_depth: Vec<u64>,
    /// Events written to the JSONL trace, when one was recorded.
    pub events_emitted: u64,
    /// Path of the JSONL trace, when one was recorded.
    pub trace_path: Option<PathBuf>,
}

impl RunManifest {
    /// A manifest for `algorithm` on `workload`, with the git revision
    /// pre-filled when discoverable.
    pub fn new(algorithm: impl Into<String>, workload: impl Into<String>) -> Self {
        RunManifest {
            algorithm: algorithm.into(),
            workload: workload.into(),
            git_revision: git_revision(),
            ..RunManifest::default()
        }
    }

    /// Appends a named counter.
    pub fn metric(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        self.metrics.push((name.into(), value));
        self
    }

    /// Appends a named bound margin.
    pub fn margin(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.margins.push((name.into(), value));
        self
    }

    /// Copies the recorded phases of `phases` into the manifest.
    pub fn set_phases(&mut self, phases: &Phases) -> &mut Self {
        self.phases = phases
            .entries()
            .iter()
            .map(|&(name, d)| {
                (
                    name.to_string(),
                    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX),
                )
            })
            .collect();
        self
    }

    /// Total `Reanchor` events recorded.
    pub fn total_reanchors(&self) -> u64 {
        self.reanchors_by_depth.iter().sum()
    }

    /// Serializes the manifest as a single pretty-free JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("algorithm", &self.algorithm)
            .str("workload", &self.workload)
            .u64("seed", self.seed)
            .u64("n", self.n)
            .u64("depth", self.depth)
            .u64("max_degree", self.max_degree)
            .u64("k", self.k);
        match &self.git_revision {
            Some(rev) => o.str("git_revision", rev),
            None => o.raw("git_revision", "null"),
        };
        o.raw("phases", &pairs_u64(&self.phases));
        o.raw("metrics", &pairs_u64(&self.metrics));
        o.raw("margins", &pairs_f64(&self.margins));
        o.raw(
            "reanchors_by_depth",
            &u64_array(self.reanchors_by_depth.iter().copied()),
        );
        o.u64("total_reanchors", self.total_reanchors());
        o.u64("events_emitted", self.events_emitted);
        match &self.trace_path {
            Some(p) => o.str("trace_path", &p.display().to_string()),
            None => o.raw("trace_path", "null"),
        };
        o.finish()
    }

    /// Writes the manifest (plus a trailing newline) to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut json = self.to_json();
        json.push('\n');
        std::fs::write(path, json)
    }
}

fn pairs_u64(pairs: &[(String, u64)]) -> String {
    let mut o = JsonObject::new();
    for (name, value) in pairs {
        o.u64(name, *value);
    }
    o.finish()
}

fn pairs_f64(pairs: &[(String, f64)]) -> String {
    let mut o = JsonObject::new();
    for (name, value) in pairs {
        o.f64(name, *value);
    }
    o.finish()
}

/// Best-effort lookup of the current git revision: walks up from the
/// current directory to the first `.git` and resolves `HEAD` (through
/// one level of ref indirection and `packed-refs`). Returns `None`
/// outside a work tree — manifests must not fail because telemetry is
/// incomplete.
pub fn git_revision() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return resolve_head(&git);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn resolve_head(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(reference) = head.strip_prefix("ref: ") else {
        // Detached HEAD: the hash itself.
        return valid_hash(head);
    };
    if let Ok(hash) = std::fs::read_to_string(git.join(reference)) {
        return valid_hash(hash.trim());
    }
    // The ref may only exist in packed-refs.
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    for line in packed.lines() {
        let mut parts = line.split_whitespace();
        if let (Some(hash), Some(name)) = (parts.next(), parts.next()) {
            if name == reference {
                return valid_hash(hash);
            }
        }
    }
    None
}

fn valid_hash(candidate: &str) -> Option<String> {
    (candidate.len() >= 40 && candidate.chars().all(|c| c.is_ascii_hexdigit()))
        .then(|| candidate.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_json_has_all_sections() {
        let mut m = RunManifest::new("bfdn", "comb-300");
        m.seed = 7;
        m.n = 300;
        m.depth = 20;
        m.max_degree = 4;
        m.k = 8;
        m.git_revision = Some("a".repeat(40));
        m.metric("rounds", 100).metric("moves", 640);
        m.margin("theorem1", 12.25);
        m.reanchors_by_depth = vec![0, 3, 5];
        m.events_emitted = 9;
        let json = m.to_json();
        for needle in [
            r#""algorithm":"bfdn""#,
            r#""workload":"comb-300""#,
            r#""seed":7"#,
            r#""metrics":{"rounds":100,"moves":640}"#,
            r#""margins":{"theorem1":12.25}"#,
            r#""reanchors_by_depth":[0,3,5]"#,
            r#""total_reanchors":8"#,
            r#""trace_path":null"#,
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
        assert_eq!(m.total_reanchors(), 8);
    }

    #[test]
    fn write_round_trips_through_disk() {
        let path = std::env::temp_dir().join("bfdn_obs_manifest_test.json");
        let mut m = RunManifest::new("dfs", "path");
        m.metric("rounds", 4);
        m.write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with("}\n"));
        assert!(text.contains(r#""rounds":4"#));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hash_validation() {
        assert!(valid_hash(&"f".repeat(40)).is_some());
        assert!(valid_hash("ref: refs/heads/main").is_none());
        assert!(valid_hash("abc").is_none());
    }

    #[test]
    fn git_revision_in_this_repo() {
        // The workspace is a git repository, so inside the build this
        // resolves; tolerate running from an exported tarball.
        if let Some(rev) = git_revision() {
            assert_eq!(rev.len(), 40);
        }
    }
}
