//! A minimal hand-rolled JSON writer.
//!
//! The workspace deliberately carries no serialization dependency (see
//! `bfdn-trees`' serde feature, which wires derives without a format
//! crate), so the observability layer writes its own JSON: flat objects
//! for events, one nesting level for manifests. Only what the crate
//! needs is implemented — strings, integers, finite floats, arrays, and
//! objects.
//!
//! # Example
//!
//! ```
//! use bfdn_obs::json::JsonObject;
//!
//! let mut o = JsonObject::new();
//! o.str("event", "reanchor").u64("robot", 3).u64("depth", 2);
//! assert_eq!(o.finish(), r#"{"event":"reanchor","robot":3,"depth":2}"#);
//! ```

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite float as a JSON number, or `null` for NaN/infinity
/// (which are not representable in JSON).
pub fn float_into(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// An incremental JSON object builder.
///
/// Keys are written in insertion order; values are escaped/validated by
/// the typed appenders. [`JsonObject::raw`] splices a pre-serialized
/// value (an array or nested object) verbatim.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) -> &mut String {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        escape_into(&mut self.buf, key);
        self.buf.push(':');
        &mut self.buf
    }

    /// Appends a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        let buf = self.key(key);
        escape_into(buf, value);
        self
    }

    /// Appends an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        let buf = self.key(key);
        let _ = write!(buf, "{value}");
        self
    }

    /// Appends a float field (`null` for non-finite values).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        let buf = self.key(key);
        float_into(buf, value);
        self
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        let buf = self.key(key);
        buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a pre-serialized JSON value verbatim (array, object, or
    /// `null`). The caller is responsible for its validity.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        let buf = self.key(key);
        buf.push_str(value);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serializes an iterator of `u64` as a JSON array.
pub fn u64_array(values: impl IntoIterator<Item = u64>) -> String {
    let mut out = String::from("[");
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn builder_chains_fields() {
        let mut o = JsonObject::new();
        o.str("a", "x").u64("b", 7).f64("c", 1.5).bool("d", false);
        assert_eq!(o.finish(), r#"{"a":"x","b":7,"c":1.5,"d":false}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObject::new();
        o.f64("m", f64::NAN).f64("n", f64::INFINITY);
        assert_eq!(o.finish(), r#"{"m":null,"n":null}"#);
    }

    #[test]
    fn raw_and_arrays() {
        let mut o = JsonObject::new();
        o.raw("xs", &u64_array([1, 2, 3]));
        assert_eq!(o.finish(), r#"{"xs":[1,2,3]}"#);
        assert_eq!(u64_array([]), "[]");
    }
}
