//! A lock-free metrics layer: counters, gauges, fixed-bucket histograms,
//! and a shared [`Registry`] that renders the Prometheus text exposition
//! format.
//!
//! The event sinks of this crate observe *one* run; the metrics layer
//! aggregates across *many* — it exists for long-lived processes such as
//! the `bfdn-serve` daemon, where per-request latencies, cache counters
//! and bound-margin aggregates must be scrapeable while the process
//! serves traffic. Instruments are plain atomics (`Relaxed` loads and
//! stores; the histogram sum is a CAS loop over `f64` bits), so the hot
//! path never takes a lock; the registry's mutex is touched only at
//! registration and render time.
//!
//! Rendering follows the Prometheus text format (version 0.0.4): one
//! `# HELP`/`# TYPE` header per family, one line per labelled series,
//! histograms as cumulative `_bucket{le=…}` plus `_sum` and `_count`.
//!
//! # Example
//!
//! ```
//! use bfdn_obs::metrics::Registry;
//!
//! let registry = Registry::new();
//! let requests = registry.counter("requests_total", "Requests served", &[]);
//! requests.inc();
//! let text = registry.render();
//! assert!(text.contains("# TYPE requests_total counter"));
//! assert!(text.contains("requests_total 1"));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` counter.
///
/// [`Counter::force_set`] exists for mirroring an *external* monotonic
/// source (e.g. a cache's own hit counter) into the registry at render
/// time; instrumented code paths should only ever [`Counter::inc`] /
/// [`Counter::add`].
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the total — only for mirroring another monotonic
    /// counter that is authoritative for this series.
    pub fn force_set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A settable `f64` gauge (stored as atomic bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    fn new(init: f64) -> Self {
        Gauge(AtomicU64::new(init.to_bits()))
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Lowers the gauge to `v` if `v` is smaller than the current value
    /// (a running minimum — e.g. the worst bound margin ever observed).
    pub fn set_min(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v < f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raises the gauge to `v` if `v` is larger than the current value.
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Default latency buckets in seconds (0.5 ms … 10 s), tuned for the
/// serving daemon's queue-wait / execute / serialize phases.
pub const DEFAULT_LATENCY_BUCKETS: [f64; 14] = [
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// A fixed-bucket histogram of `f64` observations.
///
/// Bucket counts are per-bucket atomics (rendered cumulatively, as the
/// exposition format requires); the sum is an exact CAS loop over `f64`
/// bits, so concurrent observers never lose an observation — the
/// registry unit tests assert exact totals under thread contention.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>, // one per bound, plus the +Inf overflow slot
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| v > b);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative count of observations `<=` the bucket bound at
    /// `index` into the configured bounds (the `+Inf` bucket is
    /// [`Histogram::count`]).
    pub fn cumulative(&self, index: usize) -> u64 {
        self.counts[..=index]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// The configured finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the bucket
    /// counts, interpolating linearly within the winning bucket — the
    /// same estimate PromQL's `histogram_quantile` computes, so a local
    /// report and a dashboard over the scraped series agree.
    ///
    /// Returns `NaN` for an empty histogram. Observations that landed in
    /// the `+Inf` overflow bucket clamp to the largest finite bound
    /// (quantiles cannot resolve beyond the configured buckets).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 || self.bounds.is_empty() {
            return f64::NAN;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut below = 0u64;
        for (i, &bound) in self.bounds.iter().enumerate() {
            let in_bucket = self.counts[i].load(Ordering::Relaxed);
            if in_bucket > 0 && (below + in_bucket) as f64 >= rank {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let fraction = ((rank - below as f64) / in_bucket as f64).clamp(0.0, 1.0);
                return lower + (bound - lower) * fraction;
            }
            below += in_bucket;
        }
        *self.bounds.last().expect("non-empty bounds")
    }
}

/// What kind of instrument a family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// A shared collection of named metric families, rendered as Prometheus
/// text exposition.
///
/// Registration is idempotent: asking for the same `(name, labels)`
/// again returns the existing instrument, so independent components can
/// share series without coordination. Registering one name with two
/// different kinds is a programming error and panics.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or retrieves) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(name, help, Kind::Counter, labels, || {
            Instrument::Counter(Arc::new(Counter::default()))
        })
        .into_counter()
    }

    /// Registers (or retrieves) a gauge series starting at `0.0`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.gauge_with(name, help, labels, 0.0)
    }

    /// Registers (or retrieves) a gauge series with an explicit initial
    /// value (e.g. `+Inf` for a running minimum).
    pub fn gauge_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        init: f64,
    ) -> Arc<Gauge> {
        self.register(name, help, Kind::Gauge, labels, || {
            Instrument::Gauge(Arc::new(Gauge::new(init)))
        })
        .into_gauge()
    }

    /// Registers (or retrieves) a histogram series with the given bucket
    /// upper bounds (strictly increasing; `+Inf` is implicit).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        self.register(name, help, Kind::Histogram, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new(bounds)))
        })
        .into_histogram()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Cloned {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().expect("metrics registry");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                assert_eq!(
                    family.kind,
                    kind,
                    "metric `{name}` registered as both {} and {}",
                    family.kind.as_str(),
                    kind.as_str()
                );
                family
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.labels == labels) {
            return Cloned::of(&existing.instrument);
        }
        let instrument = make();
        let cloned = Cloned::of(&instrument);
        family.series.push(Series { labels, instrument });
        cloned
    }

    /// Renders every family in registration order as Prometheus text
    /// exposition (format version 0.0.4).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().expect("metrics registry");
        for family in families.iter() {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for series in &family.series {
                render_series(&mut out, &family.name, series);
            }
        }
        out
    }
}

/// Registers the `bfdn_build_info{revision,version}` identity gauge
/// (value `1`) in `registry` — every serving binary calls this so fleet
/// scrapes can detect mixed-revision clusters. The revision is the
/// repository's current git HEAD ([`crate::git_revision`]), `unknown`
/// when the process runs outside a checkout; pass the binary's
/// `env!("CARGO_PKG_VERSION")` as `version`. Returns the revision label
/// actually used.
pub fn register_build_info(registry: &Registry, version: &str) -> String {
    let revision = crate::git_revision().unwrap_or_else(|| "unknown".to_string());
    registry
        .gauge(
            "bfdn_build_info",
            "Build identity of this process (value is always 1)",
            &[("revision", &revision), ("version", version)],
        )
        .set(1.0);
    revision
}

/// A kind-erased clone of a just-registered instrument; unwrapped by the
/// typed registration helpers.
enum Cloned {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Cloned {
    fn of(instrument: &Instrument) -> Self {
        match instrument {
            Instrument::Counter(c) => Cloned::Counter(Arc::clone(c)),
            Instrument::Gauge(g) => Cloned::Gauge(Arc::clone(g)),
            Instrument::Histogram(h) => Cloned::Histogram(Arc::clone(h)),
        }
    }

    fn into_counter(self) -> Arc<Counter> {
        match self {
            Cloned::Counter(c) => c,
            _ => unreachable!("kind checked at registration"),
        }
    }

    fn into_gauge(self) -> Arc<Gauge> {
        match self {
            Cloned::Gauge(g) => g,
            _ => unreachable!("kind checked at registration"),
        }
    }

    fn into_histogram(self) -> Arc<Histogram> {
        match self {
            Cloned::Histogram(h) => h,
            _ => unreachable!("kind checked at registration"),
        }
    }
}

fn render_series(out: &mut String, name: &str, series: &Series) {
    match &series.instrument {
        Instrument::Counter(c) => {
            out.push_str(name);
            label_set(out, &series.labels, None);
            out.push(' ');
            out.push_str(&c.get().to_string());
            out.push('\n');
        }
        Instrument::Gauge(g) => {
            out.push_str(name);
            label_set(out, &series.labels, None);
            out.push(' ');
            push_f64(out, g.get());
            out.push('\n');
        }
        Instrument::Histogram(h) => {
            for (i, bound) in h.bounds.iter().enumerate() {
                out.push_str(name);
                out.push_str("_bucket");
                let mut le = String::new();
                push_f64(&mut le, *bound);
                label_set(out, &series.labels, Some(&le));
                out.push(' ');
                out.push_str(&h.cumulative(i).to_string());
                out.push('\n');
            }
            out.push_str(name);
            out.push_str("_bucket");
            label_set(out, &series.labels, Some("+Inf"));
            out.push(' ');
            out.push_str(&h.count().to_string());
            out.push('\n');
            out.push_str(name);
            out.push_str("_sum");
            label_set(out, &series.labels, None);
            out.push(' ');
            push_f64(out, h.sum());
            out.push('\n');
            out.push_str(name);
            out.push_str("_count");
            label_set(out, &series.labels, None);
            out.push(' ');
            out.push_str(&h.count().to_string());
            out.push('\n');
        }
    }
}

/// Appends `{k="v",…}` (plus the histogram `le` label when given);
/// nothing at all for an empty label set.
fn label_set(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label(out, v);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

pub(crate) fn escape_label(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Appends a float in exposition form: shortest round-trip repr for
/// finite values, `+Inf`/`-Inf`/`NaN` otherwise.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("reqs_total", "requests", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.force_set(9);
        assert_eq!(c.get(), 9);

        let g = r.gauge("depth", "queue depth", &[]);
        g.set(3.5);
        assert_eq!(g.get(), 3.5);
        g.set_min(2.0);
        assert_eq!(g.get(), 2.0);
        g.set_min(7.0);
        assert_eq!(g.get(), 2.0, "set_min never raises");
        g.set_max(11.0);
        assert_eq!(g.get(), 11.0);
        g.set_max(1.0);
        assert_eq!(g.get(), 11.0, "set_max never lowers");
    }

    #[test]
    fn worst_margin_gauge_starts_at_infinity() {
        let r = Registry::new();
        let g = r.gauge_with("worst", "running min", &[], f64::INFINITY);
        assert_eq!(g.get(), f64::INFINITY);
        g.set_min(12.5);
        g.set_min(40.0);
        assert_eq!(g.get(), 12.5);
        assert!(r.render().contains("worst 12.5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let r = Registry::new();
        let h = r.histogram("lat", "latency", &[], &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 56.05).abs() < 1e-9);
        assert_eq!(h.cumulative(0), 1);
        assert_eq!(h.cumulative(1), 3);
        assert_eq!(h.cumulative(2), 4);
        let text = r.render();
        for needle in [
            "# TYPE lat histogram",
            "lat_bucket{le=\"0.1\"} 1",
            "lat_bucket{le=\"1\"} 3",
            "lat_bucket{le=\"10\"} 4",
            "lat_bucket{le=\"+Inf\"} 5",
            "lat_sum 56.05",
            "lat_count 5",
        ] {
            assert!(text.contains(needle), "{needle} missing from:\n{text}");
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let r = Registry::new();
        let h = r.histogram("q", "latency", &[], &[0.1, 1.0, 10.0]);
        assert!(h.quantile(0.5).is_nan(), "empty histogram has no quantile");
        // 10 observations: 5 in (0, 0.1], 4 in (0.1, 1], 1 in (1, 10].
        for _ in 0..5 {
            h.observe(0.05);
        }
        for _ in 0..4 {
            h.observe(0.5);
        }
        h.observe(5.0);
        // p50: rank 5 lands exactly on the first bucket's full count.
        assert!((h.quantile(0.5) - 0.1).abs() < 1e-12);
        // p90: rank 9 = all of bucket 2 → its upper bound.
        assert!((h.quantile(0.9) - 1.0).abs() < 1e-12);
        // p70: rank 7 is 2/4 into bucket 2 → 0.1 + 0.5*(1-0.1).
        assert!((h.quantile(0.7) - 0.55).abs() < 1e-12);
        // p100 resolves inside the last finite bucket.
        assert!((h.quantile(1.0) - 10.0).abs() < 1e-12);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_clamps_overflow_to_the_largest_finite_bound() {
        let r = Registry::new();
        let h = r.histogram("qo", "latency", &[], &[0.1, 1.0]);
        h.observe(50.0); // +Inf bucket only
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.bounds(), &[0.1, 1.0]);
    }

    #[test]
    fn quantile_of_empty_and_single_sample_histograms() {
        let r = Registry::new();
        let h = r.histogram("edge", "latency", &[], &[0.1, 1.0, 10.0]);
        // Empty: every quantile is NaN, not a panic or a zero.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert!(h.quantile(q).is_nan(), "empty histogram, q={q}");
        }
        // A single sample answers every quantile from its own bucket.
        h.observe(0.5);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(
                (0.1..=1.0).contains(&v),
                "single sample in (0.1, 1.0] answers q={q} with {v}"
            );
        }
    }

    #[test]
    fn quantile_with_every_sample_in_the_overflow_bucket() {
        let r = Registry::new();
        let h = r.histogram("over", "latency", &[], &[0.1, 1.0]);
        for _ in 0..100 {
            h.observe(99.0); // all beyond the last finite bound
        }
        // Quantiles cannot resolve past the configured buckets: they
        // clamp to the largest finite bound instead of inventing +Inf.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 1.0, "q={q}");
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.cumulative(1), 0, "no finite bucket holds anything");
    }

    #[test]
    fn build_info_gauge_registers_revision_and_version() {
        let r = Registry::new();
        let revision = register_build_info(&r, "9.9.9");
        assert!(!revision.is_empty());
        let text = r.render();
        assert!(text.contains("# TYPE bfdn_build_info gauge"), "{text}");
        assert!(
            text.contains(&format!(
                "bfdn_build_info{{revision=\"{revision}\",version=\"9.9.9\"}} 1"
            )),
            "{text}"
        );
        // Idempotent: a second registration reuses the series.
        register_build_info(&r, "9.9.9");
        assert_eq!(r.render().matches("bfdn_build_info{").count(), 1);
    }

    #[test]
    fn boundary_observation_lands_in_its_bucket() {
        let r = Registry::new();
        let h = r.histogram("b", "bounds", &[], &[1.0, 2.0]);
        h.observe(1.0); // `le` is inclusive
        h.observe(2.0);
        assert_eq!(h.cumulative(0), 1);
        assert_eq!(h.cumulative(1), 2);
    }

    #[test]
    fn labelled_series_render_separately() {
        let r = Registry::new();
        let explore = r.counter("reqs_total", "requests", &[("type", "explore")]);
        let batch = r.counter("reqs_total", "requests", &[("type", "batch")]);
        explore.add(2);
        batch.inc();
        let text = r.render();
        assert!(text.contains("reqs_total{type=\"explore\"} 2"));
        assert!(text.contains("reqs_total{type=\"batch\"} 1"));
        assert_eq!(
            text.matches("# TYPE reqs_total counter").count(),
            1,
            "one header per family"
        );
    }

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("c_total", "help", &[("x", "1")]);
        let b = r.counter("c_total", "help", &[("x", "1")]);
        a.inc();
        assert_eq!(b.get(), 1, "same series, same instrument");
        let other = r.counter("c_total", "help", &[("x", "2")]);
        assert_eq!(other.get(), 0, "different labels, fresh series");
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("m", "help", &[]);
        let _ = r.gauge("m", "help", &[]);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        let c = r.counter("esc_total", "help", &[("path", "a\"b\\c\nd")]);
        c.inc();
        assert!(r.render().contains(r#"esc_total{path="a\"b\\c\nd"} 1"#));
    }

    #[test]
    fn concurrent_increments_are_exact() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let r = Registry::new();
        let c = r.counter("conc_total", "help", &[]);
        let h = r.histogram("conc_lat", "help", &[], &[0.5]);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        // Alternate buckets so both slots see contention.
                        h.observe(if (t + i) % 2 == 0 { 0.25 } else { 1.0 });
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS * PER_THREAD);
        assert_eq!(h.count(), THREADS * PER_THREAD);
        assert_eq!(h.cumulative(0), THREADS * PER_THREAD / 2);
        // The CAS-loop sum is exact: every observation is 0.25 or 1.0,
        // both exactly representable, added once each.
        let expected = (THREADS * PER_THREAD / 2) as f64 * 1.25;
        assert_eq!(h.sum(), expected);
    }
}
