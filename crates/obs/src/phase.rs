//! Wall-clock phase timing for harness runs.

use crate::{Event, EventSink};
use std::time::{Duration, Instant};

/// Accumulates named wall-clock phases of a run (workload generation,
/// the exploration itself, table rendering, …).
///
/// Phases feed two consumers: [`Phases::emit`] turns them into
/// [`Event::PhaseTimer`] events for a trace, and the run manifest
/// records them as `{phase, nanos}` pairs.
///
/// # Example
///
/// ```
/// use bfdn_obs::Phases;
///
/// let mut phases = Phases::default();
/// let sum = phases.time("add", || 2 + 2);
/// assert_eq!(sum, 4);
/// assert_eq!(phases.entries().len(), 1);
/// assert_eq!(phases.entries()[0].0, "add");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Phases {
    entries: Vec<(&'static str, Duration)>,
}

impl Phases {
    /// Runs `f`, recording its wall-clock under `name`.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.entries.push((name, start.elapsed()));
        out
    }

    /// Records an externally measured phase.
    pub fn record(&mut self, name: &'static str, elapsed: Duration) {
        self.entries.push((name, elapsed));
    }

    /// The recorded `(name, duration)` pairs, in completion order.
    pub fn entries(&self) -> &[(&'static str, Duration)] {
        &self.entries
    }

    /// Total wall-clock across all recorded phases.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// Emits one [`Event::PhaseTimer`] per recorded phase.
    pub fn emit(&self, sink: &mut dyn EventSink) {
        for &(phase, elapsed) in &self.entries {
            sink.emit(&Event::PhaseTimer {
                phase,
                nanos: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySink;

    #[test]
    fn records_and_emits() {
        let mut phases = Phases::default();
        phases.time("a", || std::thread::sleep(Duration::from_millis(1)));
        phases.record("b", Duration::from_nanos(5));
        assert_eq!(phases.entries().len(), 2);
        assert!(phases.entries()[0].1 >= Duration::from_millis(1));
        assert!(phases.total() >= Duration::from_millis(1));

        let mut sink = MemorySink::default();
        phases.emit(&mut sink);
        assert_eq!(sink.count(|e| matches!(e, Event::PhaseTimer { .. })), 2);
        assert!(sink.events().iter().any(|e| matches!(
            e,
            Event::PhaseTimer {
                phase: "b",
                nanos: 5
            }
        )));
    }
}
