//! Federated metrics: parse per-shard Prometheus expositions and
//! re-render one fleet-wide exposition with per-shard labels plus
//! cluster rollups.
//!
//! Each shard of a `bfdn-cluster` deployment renders its own
//! [`crate::metrics::Registry`]; this module is the other half of that
//! contract — a text-format parser ([`parse_exposition`]) and an
//! aggregator ([`FleetAggregator`]) that a collector (the
//! `bfdn-cluster-proxy --fleet-metrics` thread or the standalone
//! `bfdn-fleet` binary) feeds with raw scrapes. The aggregator is pure
//! state-in/state-out: it never does I/O or reads clocks, so the rollup
//! math is unit-testable against in-process registries and the summed
//! counters are *exactly* the sum of the individual scrapes it was fed.
//!
//! Rendering rules:
//!
//! - Every scraped series reappears under its original name with a
//!   `shard="host:port"` label prepended — per-shard drill-down keeps
//!   working on the aggregated endpoint.
//! - Each family also gets rollup series *without* the `shard` label:
//!   counters (histogram `_bucket`/`_sum`/`_count` components included)
//!   sum across shards; gauges sum too, except running minima (names
//!   ending `_worst`, e.g. `bfdn_bound_margin_worst`) which take the
//!   fleet-wide minimum — the worst margin anywhere in the fleet — and
//!   `bfdn_build_info`, which is identity, not quantity, and is only
//!   meaningful per shard.
//! - Histogram families additionally yield a `<name>_p99_max` gauge per
//!   label set: each shard's p99 is interpolated from its own buckets
//!   ([`quantile_from_buckets`], the same estimate PromQL computes) and
//!   the fleet reports the worst shard.
//! - `bfdn_shard_up{shard=…}` is `1` for shards whose latest scrape
//!   succeeded and `0` for shards marked down — a SIGKILLed shard shows
//!   as down (its last-known series stay visible, staleness-marked by
//!   the gauge) rather than silently vanishing from the exposition.

use crate::metrics::{escape_label, push_f64};
use std::collections::BTreeMap;

/// The instrument kind a `# TYPE` line declared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
    /// No `# TYPE` line seen.
    Untyped,
}

impl SeriesKind {
    fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
            SeriesKind::Untyped => "untyped",
        }
    }
}

/// One parsed sample line: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Sample name as written (histogram components keep their
    /// `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in written order (`le` included).
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf`/`-Inf`/`NaN` parse to the matching
    /// float).
    pub value: f64,
}

/// One parsed exposition: declared family kinds plus every sample.
#[derive(Clone, Debug, Default)]
pub struct Scrape {
    /// `(family name, kind)` from `# TYPE` lines, in declaration order.
    pub kinds: Vec<(String, SeriesKind)>,
    /// Every sample line, in exposition order.
    pub samples: Vec<Sample>,
}

impl Scrape {
    /// The declared kind of `family`, or [`SeriesKind::Untyped`].
    pub fn kind_of(&self, family: &str) -> SeriesKind {
        self.kinds
            .iter()
            .find(|(name, _)| name == family)
            .map(|&(_, kind)| kind)
            .unwrap_or(SeriesKind::Untyped)
    }

    /// The value of the first sample matching `name` and `labels`
    /// exactly (label order ignored).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels
                        .iter()
                        .all(|&(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
    }
}

/// Parses Prometheus text exposition (format 0.0.4) as rendered by
/// [`crate::metrics::Registry`]. Comment lines other than `# TYPE` are
/// skipped; malformed lines are dropped rather than failing the whole
/// scrape (a federation endpoint must degrade, not refuse).
pub fn parse_exposition(text: &str) -> Scrape {
    let mut scrape = Scrape::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            if let (Some(name), Some(kind)) = (parts.next(), parts.next()) {
                let kind = match kind {
                    "counter" => SeriesKind::Counter,
                    "gauge" => SeriesKind::Gauge,
                    "histogram" => SeriesKind::Histogram,
                    _ => SeriesKind::Untyped,
                };
                scrape.kinds.push((name.to_string(), kind));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        if let Some(sample) = parse_sample(line) {
            scrape.samples.push(sample);
        }
    }
    scrape
}

/// Parses one `name{k="v",…} value` (or `name value`) line.
fn parse_sample(line: &str) -> Option<Sample> {
    let (name_and_labels, value) = match line.rfind(' ') {
        Some(split) => (&line[..split], line[split + 1..].trim()),
        None => return None,
    };
    let value = parse_value(value)?;
    let (name, labels) = match name_and_labels.find('{') {
        None => (name_and_labels.trim().to_string(), Vec::new()),
        Some(open) => {
            let name = name_and_labels[..open].trim().to_string();
            let body = name_and_labels[open + 1..].strip_suffix('}')?;
            (name, parse_labels(body)?)
        }
    };
    if name.is_empty() {
        return None;
    }
    Some(Sample {
        name,
        labels,
        value,
    })
}

fn parse_value(text: &str) -> Option<f64> {
    match text {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

/// Parses the inside of a `{…}` label set, honouring the exposition's
/// `\\`, `\"` and `\n` escapes in label values.
fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Some(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return None;
        }
        let mut value = String::new();
        loop {
            match chars.next()? {
                '"' => break,
                '\\' => match chars.next()? {
                    'n' => value.push('\n'),
                    c => value.push(c),
                },
                c => value.push(c),
            }
        }
        labels.push((key.trim().to_string(), value));
    }
}

/// Estimates the `q`-quantile from cumulative `(le, count)` histogram
/// buckets (the `+Inf` bucket last), interpolating linearly within the
/// winning bucket — [`crate::metrics::Histogram::quantile`] computed
/// from scraped series instead of live atomics.
///
/// Returns `NaN` when the histogram is empty or has no finite buckets;
/// observations beyond the largest finite bound clamp to it.
pub fn quantile_from_buckets(buckets: &[(f64, u64)], q: f64) -> f64 {
    let finite: Vec<(f64, u64)> = buckets
        .iter()
        .copied()
        .filter(|&(le, _)| le.is_finite())
        .collect();
    let total = buckets.last().map(|&(_, count)| count).unwrap_or(0);
    if total == 0 || finite.is_empty() {
        return f64::NAN;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut below = 0u64;
    for (i, &(bound, cumulative)) in finite.iter().enumerate() {
        let in_bucket = cumulative.saturating_sub(below);
        if in_bucket > 0 && cumulative as f64 >= rank {
            let lower = if i == 0 { 0.0 } else { finite[i - 1].0 };
            let fraction = ((rank - below as f64) / in_bucket as f64).clamp(0.0, 1.0);
            return lower + (bound - lower) * fraction;
        }
        below = cumulative;
    }
    finite.last().expect("non-empty").0
}

/// One shard's slot in the aggregator.
#[derive(Debug)]
struct ShardSlot {
    addr: String,
    up: bool,
    scrape: Option<Scrape>,
    scrapes: u64,
    failures: u64,
}

/// Aggregates per-shard scrapes into one fleet exposition.
///
/// Feed it with [`FleetAggregator::observe`] on every successful scrape
/// and [`FleetAggregator::mark_down`] when a shard stops answering;
/// [`FleetAggregator::render`] produces the federated text.
#[derive(Debug)]
pub struct FleetAggregator {
    shards: Vec<ShardSlot>,
}

impl FleetAggregator {
    /// An aggregator over the given shard addresses, all initially down
    /// (nothing scraped yet).
    pub fn new<I, S>(shards: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        FleetAggregator {
            shards: shards
                .into_iter()
                .map(|addr| ShardSlot {
                    addr: addr.into(),
                    up: false,
                    scrape: None,
                    scrapes: 0,
                    failures: 0,
                })
                .collect(),
        }
    }

    /// The configured shard addresses.
    pub fn shards(&self) -> Vec<String> {
        self.shards.iter().map(|s| s.addr.clone()).collect()
    }

    /// Records a successful scrape of `addr` (unknown addresses are
    /// added, so a collector can grow the fleet at runtime).
    pub fn observe(&mut self, addr: &str, exposition: &str) {
        let scrape = parse_exposition(exposition);
        match self.shards.iter_mut().find(|s| s.addr == addr) {
            Some(slot) => {
                slot.up = true;
                slot.scrape = Some(scrape);
                slot.scrapes += 1;
            }
            None => self.shards.push(ShardSlot {
                addr: addr.to_string(),
                up: true,
                scrape: Some(scrape),
                scrapes: 1,
                failures: 0,
            }),
        }
    }

    /// Marks `addr` down (scrape failed or timed out). Its last-known
    /// series stay in the exposition, flagged by `bfdn_shard_up 0`.
    pub fn mark_down(&mut self, addr: &str) {
        if let Some(slot) = self.shards.iter_mut().find(|s| s.addr == addr) {
            slot.up = false;
            slot.failures += 1;
        }
    }

    /// `(up, total)` shard counts.
    pub fn up_counts(&self) -> (usize, usize) {
        (
            self.shards.iter().filter(|s| s.up).count(),
            self.shards.len(),
        )
    }

    /// The fleet-wide minimum of gauge `name` across shards, grouped
    /// over every label set — the "worst anywhere" rollup, exposed for
    /// programmatic callers (loadgen reports, watchdogs).
    pub fn min_gauge(&self, name: &str) -> Option<f64> {
        let mut worst: Option<f64> = None;
        for slot in &self.shards {
            let Some(scrape) = &slot.scrape else { continue };
            for sample in scrape.samples.iter().filter(|s| s.name == name) {
                if !sample.value.is_nan() {
                    worst = Some(match worst {
                        Some(w) if w <= sample.value => w,
                        _ => sample.value,
                    });
                }
            }
        }
        worst
    }

    /// The fleet-wide sum of every sample named `name` across shards
    /// and label sets.
    pub fn sum(&self, name: &str) -> f64 {
        self.shards
            .iter()
            .filter_map(|s| s.scrape.as_ref())
            .flat_map(|scrape| scrape.samples.iter())
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// Renders the federated exposition: fleet-own gauges first, then
    /// every scraped family with per-shard series and rollups.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_fleet_meta(&mut out);

        // Family order: first declaration across shards in shard order,
        // so the output is deterministic for a fixed scrape set.
        let mut families: Vec<(String, SeriesKind)> = Vec::new();
        for slot in &self.shards {
            let Some(scrape) = &slot.scrape else { continue };
            for (name, kind) in &scrape.kinds {
                if !families.iter().any(|(n, _)| n == name) {
                    families.push((name.clone(), *kind));
                }
            }
        }

        for (family, kind) in &families {
            self.render_family(&mut out, family, *kind);
        }
        out
    }

    fn render_fleet_meta(&self, out: &mut String) {
        let (up, total) = self.up_counts();
        out.push_str("# HELP bfdn_fleet_shards Shards this collector is configured to scrape\n");
        out.push_str("# TYPE bfdn_fleet_shards gauge\n");
        out.push_str(&format!("bfdn_fleet_shards {total}\n"));
        out.push_str("# HELP bfdn_fleet_shards_up Shards whose latest scrape succeeded\n");
        out.push_str("# TYPE bfdn_fleet_shards_up gauge\n");
        out.push_str(&format!("bfdn_fleet_shards_up {up}\n"));
        out.push_str("# HELP bfdn_shard_up Whether the shard answered its latest scrape\n");
        out.push_str("# TYPE bfdn_shard_up gauge\n");
        for slot in &self.shards {
            out.push_str("bfdn_shard_up{shard=\"");
            escape_label(out, &slot.addr);
            out.push_str("\"} ");
            out.push_str(if slot.up { "1" } else { "0" });
            out.push('\n');
        }
        out.push_str("# HELP bfdn_fleet_scrapes_total Successful scrapes per shard\n");
        out.push_str("# TYPE bfdn_fleet_scrapes_total counter\n");
        for slot in &self.shards {
            out.push_str("bfdn_fleet_scrapes_total{shard=\"");
            escape_label(out, &slot.addr);
            out.push_str("\"} ");
            out.push_str(&slot.scrapes.to_string());
            out.push('\n');
        }
        out.push_str("# HELP bfdn_fleet_scrape_failures_total Failed scrapes per shard\n");
        out.push_str("# TYPE bfdn_fleet_scrape_failures_total counter\n");
        for slot in &self.shards {
            out.push_str("bfdn_fleet_scrape_failures_total{shard=\"");
            escape_label(out, &slot.addr);
            out.push_str("\"} ");
            out.push_str(&slot.failures.to_string());
            out.push('\n');
        }
    }

    /// The sample names a family owns: the family name itself, plus the
    /// histogram component suffixes.
    fn family_samples<'s>(scrape: &'s Scrape, family: &str, kind: SeriesKind) -> Vec<&'s Sample> {
        let components = [
            format!("{family}_bucket"),
            format!("{family}_sum"),
            format!("{family}_count"),
        ];
        scrape
            .samples
            .iter()
            .filter(|s| {
                s.name == family || (kind == SeriesKind::Histogram && components.contains(&s.name))
            })
            .collect()
    }

    fn render_family(&self, out: &mut String, family: &str, kind: SeriesKind) {
        out.push_str("# TYPE ");
        out.push_str(family);
        out.push(' ');
        out.push_str(kind.as_str());
        out.push('\n');

        // Per-shard series, `shard` label prepended.
        for slot in &self.shards {
            let Some(scrape) = &slot.scrape else { continue };
            for sample in Self::family_samples(scrape, family, kind) {
                out.push_str(&sample.name);
                out.push_str("{shard=\"");
                escape_label(out, &slot.addr);
                out.push('"');
                for (k, v) in &sample.labels {
                    out.push(',');
                    out.push_str(k);
                    out.push_str("=\"");
                    escape_label(out, v);
                    out.push('"');
                }
                out.push_str("} ");
                push_f64(out, sample.value);
                out.push('\n');
            }
        }

        // Rollups: grouped by the shard-less label set, in
        // first-appearance order; sums for counters and histogram
        // components, min for `*_worst` gauges, sum for other gauges.
        // `bfdn_build_info` is identity, not quantity — no rollup.
        if family == "bfdn_build_info" {
            return;
        }
        let take_min = kind == SeriesKind::Gauge && family.ends_with("_worst");
        let mut groups: BTreeMap<(String, Vec<(String, String)>), f64> = BTreeMap::new();
        for slot in &self.shards {
            let Some(scrape) = &slot.scrape else { continue };
            for sample in Self::family_samples(scrape, family, kind) {
                let mut key_labels = sample.labels.clone();
                key_labels.sort();
                let entry = groups.entry((sample.name.clone(), key_labels));
                if take_min {
                    entry
                        .and_modify(|v| {
                            if sample.value < *v {
                                *v = sample.value;
                            }
                        })
                        .or_insert(sample.value);
                } else {
                    *entry.or_insert(0.0) += sample.value;
                }
            }
        }
        for ((name, labels), value) in &groups {
            out.push_str(name);
            if !labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push_str("=\"");
                    escape_label(out, v);
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            push_f64(out, *value);
            out.push('\n');
        }

        // Histograms also report the worst per-shard p99 per label set.
        if kind == SeriesKind::Histogram {
            self.render_p99_max(out, family);
        }
    }

    fn render_p99_max(&self, out: &mut String, family: &str) {
        /// Non-`le` label set identifying one histogram series.
        type LabelSet = Vec<(String, String)>;
        let bucket_name = format!("{family}_bucket");
        // label set (without le) -> max p99 across shards
        let mut worst: BTreeMap<LabelSet, f64> = BTreeMap::new();
        for slot in &self.shards {
            let Some(scrape) = &slot.scrape else { continue };
            // Group this shard's buckets by their non-le labels.
            let mut per_set: BTreeMap<LabelSet, Vec<(f64, u64)>> = BTreeMap::new();
            for sample in scrape.samples.iter().filter(|s| s.name == bucket_name) {
                let le = sample
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .and_then(|(_, v)| parse_value(v));
                let Some(le) = le else { continue };
                let mut rest: Vec<(String, String)> = sample
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .cloned()
                    .collect();
                rest.sort();
                per_set
                    .entry(rest)
                    .or_default()
                    .push((le, sample.value as u64));
            }
            for (labels, mut buckets) in per_set {
                buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are ordered"));
                let p99 = quantile_from_buckets(&buckets, 0.99);
                if p99.is_nan() {
                    continue;
                }
                worst
                    .entry(labels)
                    .and_modify(|v| {
                        if p99 > *v {
                            *v = p99;
                        }
                    })
                    .or_insert(p99);
            }
        }
        if worst.is_empty() {
            return;
        }
        out.push_str("# TYPE ");
        out.push_str(family);
        out.push_str("_p99_max gauge\n");
        for (labels, value) in &worst {
            out.push_str(family);
            out.push_str("_p99_max");
            if !labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push_str("=\"");
                    escape_label(out, v);
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            push_f64(out, *value);
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn parses_names_labels_and_special_values() {
        let text = "# HELP x help text\n\
                    # TYPE x counter\n\
                    x{type=\"explore\"} 5\n\
                    x{type=\"batch\"} 2\n\
                    # TYPE g gauge\n\
                    g +Inf\n\
                    neg -Inf\n\
                    nan NaN\n\
                    esc{path=\"a\\\"b\\\\c\\nd\"} 1\n\
                    plain 7.5\n";
        let scrape = parse_exposition(text);
        assert_eq!(scrape.kind_of("x"), SeriesKind::Counter);
        assert_eq!(scrape.kind_of("g"), SeriesKind::Gauge);
        assert_eq!(scrape.kind_of("plain"), SeriesKind::Untyped);
        assert_eq!(scrape.value("x", &[("type", "explore")]), Some(5.0));
        assert_eq!(scrape.value("x", &[("type", "batch")]), Some(2.0));
        assert_eq!(scrape.value("g", &[]), Some(f64::INFINITY));
        assert_eq!(scrape.value("neg", &[]), Some(f64::NEG_INFINITY));
        assert!(scrape.value("nan", &[]).unwrap().is_nan());
        assert_eq!(scrape.value("esc", &[("path", "a\"b\\c\nd")]), Some(1.0));
        assert_eq!(scrape.value("plain", &[]), Some(7.5));
    }

    #[test]
    fn registry_render_round_trips_through_the_parser() {
        let r = Registry::new();
        r.counter("reqs_total", "requests", &[("type", "explore")])
            .add(3);
        r.gauge("depth", "queue depth", &[]).set(2.5);
        let h = r.histogram("lat_seconds", "latency", &[], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(5.0);
        let scrape = parse_exposition(&r.render());
        assert_eq!(scrape.kind_of("lat_seconds"), SeriesKind::Histogram);
        assert_eq!(
            scrape.value("reqs_total", &[("type", "explore")]),
            Some(3.0)
        );
        assert_eq!(scrape.value("depth", &[]), Some(2.5));
        assert_eq!(
            scrape.value("lat_seconds_bucket", &[("le", "0.1")]),
            Some(1.0)
        );
        assert_eq!(
            scrape.value("lat_seconds_bucket", &[("le", "+Inf")]),
            Some(2.0)
        );
        assert_eq!(scrape.value("lat_seconds_count", &[]), Some(2.0));
    }

    /// Three in-process registries play three shards; the rollup counter
    /// must be *exactly* the per-shard sum.
    #[test]
    fn summed_counters_equal_per_shard_sums() {
        let mut fleet = FleetAggregator::new(["a:1", "b:2", "c:3"]);
        let per_shard = [7u64, 11, 23];
        for (i, addr) in ["a:1", "b:2", "c:3"].iter().enumerate() {
            let r = Registry::new();
            r.counter("bfdn_requests_total", "requests", &[("type", "explore")])
                .add(per_shard[i]);
            r.counter("bfdn_requests_total", "requests", &[("type", "batch")])
                .add(per_shard[i] * 2);
            fleet.observe(addr, &r.render());
        }
        let text = fleet.render();
        let rollup = parse_exposition(&text);
        assert_eq!(
            rollup.value("bfdn_requests_total", &[("type", "explore")]),
            Some(41.0),
            "rollup is the exact per-shard sum:\n{text}"
        );
        assert_eq!(
            rollup.value("bfdn_requests_total", &[("type", "batch")]),
            Some(82.0)
        );
        // Per-shard series survive with the shard label prepended.
        assert_eq!(
            rollup.value(
                "bfdn_requests_total",
                &[("shard", "b:2"), ("type", "explore")]
            ),
            Some(11.0)
        );
        assert_eq!(fleet.sum("bfdn_requests_total"), 41.0 + 82.0);
    }

    #[test]
    fn worst_margin_rollup_picks_the_minimum() {
        let mut fleet = FleetAggregator::new(["a:1", "b:2", "c:3"]);
        for (addr, margin) in [("a:1", 12.5), ("b:2", 3.25), ("c:3", 7.0)] {
            let r = Registry::new();
            r.gauge_with(
                "bfdn_bound_margin_worst",
                "worst margin",
                &[("bound", "theorem1_rounds")],
                f64::INFINITY,
            )
            .set_min(margin);
            fleet.observe(addr, &r.render());
        }
        let rollup = parse_exposition(&fleet.render());
        assert_eq!(
            rollup.value("bfdn_bound_margin_worst", &[("bound", "theorem1_rounds")]),
            Some(3.25),
            "a `_worst` gauge rolls up as the fleet-wide minimum"
        );
        assert_eq!(fleet.min_gauge("bfdn_bound_margin_worst"), Some(3.25));
    }

    #[test]
    fn untouched_margin_gauges_stay_infinite_in_the_rollup() {
        let mut fleet = FleetAggregator::new(["a:1"]);
        let r = Registry::new();
        r.gauge_with("m_worst", "worst", &[], f64::INFINITY);
        fleet.observe("a:1", &r.render());
        let rollup = parse_exposition(&fleet.render());
        assert_eq!(rollup.value("m_worst", &[]), Some(f64::INFINITY));
    }

    #[test]
    fn downed_shards_flip_the_up_gauge_but_keep_stale_series() {
        let mut fleet = FleetAggregator::new(["a:1", "b:2"]);
        for addr in ["a:1", "b:2"] {
            let r = Registry::new();
            r.counter("c_total", "c", &[]).add(5);
            fleet.observe(addr, &r.render());
        }
        let up = parse_exposition(&fleet.render());
        assert_eq!(up.value("bfdn_shard_up", &[("shard", "a:1")]), Some(1.0));
        assert_eq!(up.value("bfdn_shard_up", &[("shard", "b:2")]), Some(1.0));
        assert_eq!(up.value("bfdn_fleet_shards_up", &[]), Some(2.0));

        fleet.mark_down("b:2");
        let down = parse_exposition(&fleet.render());
        assert_eq!(down.value("bfdn_shard_up", &[("shard", "b:2")]), Some(0.0));
        assert_eq!(down.value("bfdn_fleet_shards_up", &[]), Some(1.0));
        // The dead shard's last-known series and the rollup stay put.
        assert_eq!(down.value("c_total", &[("shard", "b:2")]), Some(5.0));
        assert_eq!(down.value("c_total", &[]), Some(10.0));
        assert_eq!(
            down.value("bfdn_fleet_scrape_failures_total", &[("shard", "b:2")]),
            Some(1.0)
        );
    }

    #[test]
    fn build_info_is_never_rolled_up() {
        let mut fleet = FleetAggregator::new(["a:1", "b:2"]);
        for addr in ["a:1", "b:2"] {
            let r = Registry::new();
            r.gauge(
                "bfdn_build_info",
                "build identity",
                &[("revision", "abc123"), ("version", "0.1.0")],
            )
            .set(1.0);
            fleet.observe(addr, &r.render());
        }
        let rollup = parse_exposition(&fleet.render());
        assert_eq!(
            rollup.value(
                "bfdn_build_info",
                &[("revision", "abc123"), ("version", "0.1.0")]
            ),
            None,
            "summing identity gauges would fabricate a meaningless 2"
        );
        assert_eq!(
            rollup.value(
                "bfdn_build_info",
                &[
                    ("shard", "a:1"),
                    ("revision", "abc123"),
                    ("version", "0.1.0")
                ]
            ),
            Some(1.0)
        );
    }

    #[test]
    fn histograms_sum_components_and_report_worst_p99() {
        let mut fleet = FleetAggregator::new(["fast:1", "slow:2"]);
        let fast = Registry::new();
        let h = fast.histogram(
            "lat_seconds",
            "latency",
            &[("type", "explore")],
            &[0.1, 1.0],
        );
        for _ in 0..100 {
            h.observe(0.05);
        }
        fleet.observe("fast:1", &fast.render());
        let slow = Registry::new();
        let h = slow.histogram(
            "lat_seconds",
            "latency",
            &[("type", "explore")],
            &[0.1, 1.0],
        );
        for _ in 0..100 {
            h.observe(0.5);
        }
        fleet.observe("slow:2", &slow.render());

        let rollup = parse_exposition(&fleet.render());
        assert_eq!(
            rollup.value("lat_seconds_count", &[("type", "explore")]),
            Some(200.0)
        );
        assert_eq!(
            rollup.value("lat_seconds_bucket", &[("type", "explore"), ("le", "0.1")]),
            Some(100.0)
        );
        let p99 = rollup
            .value("lat_seconds_p99_max", &[("type", "explore")])
            .expect("p99 rollup present");
        // The slow shard's p99 interpolates inside its (0.1, 1.0] bucket.
        assert!(p99 > 0.1 && p99 <= 1.0, "worst-shard p99 {p99}");
    }

    #[test]
    fn quantile_from_buckets_edge_cases() {
        // Empty.
        assert!(quantile_from_buckets(&[], 0.5).is_nan());
        // Zero observations.
        assert!(quantile_from_buckets(&[(0.1, 0), (f64::INFINITY, 0)], 0.5).is_nan());
        // Single sample in the first bucket.
        let single = [(0.1, 1), (1.0, 1), (f64::INFINITY, 1)];
        let q = quantile_from_buckets(&single, 0.5);
        assert!(q > 0.0 && q <= 0.1, "{q}");
        // Everything in the overflow bucket clamps to the largest
        // finite bound.
        let overflow = [(0.1, 0), (1.0, 0), (f64::INFINITY, 10)];
        assert_eq!(quantile_from_buckets(&overflow, 0.99), 1.0);
        // No finite buckets at all.
        assert!(quantile_from_buckets(&[(f64::INFINITY, 10)], 0.5).is_nan());
        // Matches the live histogram's estimate.
        let r = Registry::new();
        let h = r.histogram("m", "m", &[], &[0.1, 1.0, 10.0]);
        for _ in 0..5 {
            h.observe(0.05);
        }
        for _ in 0..4 {
            h.observe(0.5);
        }
        h.observe(5.0);
        let buckets = [
            (0.1, h.cumulative(0)),
            (1.0, h.cumulative(1)),
            (10.0, h.cumulative(2)),
            (f64::INFINITY, h.count()),
        ];
        for q in [0.5, 0.7, 0.9, 0.99] {
            assert!((quantile_from_buckets(&buckets, q) - h.quantile(q)).abs() < 1e-12);
        }
    }
}
