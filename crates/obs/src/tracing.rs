//! Request-scoped distributed tracing: span trees, a bounded
//! non-blocking ring recorder, and Perfetto-loadable exporters.
//!
//! Aggregate metrics ([`crate::metrics`]) answer "how is the fleet
//! doing"; this module answers "why was *this* request slow". A
//! [`SpanRecord`] captures one timed operation (`trace`/`span`/`parent`
//! ids, nanosecond start and duration relative to the recorder epoch,
//! typed attributes); spans sharing a `trace` id form one tree per
//! request, stitched across threads and — via the wire-propagated
//! `trace` field — across processes.
//!
//! Recording never blocks a hot path: [`SpanRecorder::record`] claims a
//! ring slot with an atomic counter and a `try_lock`, and counts a drop
//! instead of waiting when the slot is contended or when the ring wraps
//! over an older span. Readers ([`SpanRecorder::snapshot`]) may block
//! briefly on a slot; writers never do.
//!
//! Two export formats, chosen by file extension in
//! [`TraceFormat::from_path`]:
//!
//! - **JSONL** (`.jsonl`): one span object per line, grep-friendly.
//! - **Chrome trace-event** (`.json`): an array of `"ph":"X"` complete
//!   events loadable in [Perfetto](https://ui.perfetto.dev) or
//!   `chrome://tracing`, one timeline row per trace.
//!
//! [`SpanSink`] adapts the [`EventSink`] world: it turns
//! [`Event::PhaseTimer`] events (emitted by [`crate::Phases`] and the
//! simulator) into back-dated child spans, so a worker's `execute` span
//! decomposes into the simulator's phases.
//!
//! # Example
//!
//! ```
//! use bfdn_obs::tracing::{SpanRecord, SpanRecorder};
//!
//! let recorder = SpanRecorder::new(64);
//! let trace = 0xabcd;
//! let root = recorder.next_id();
//! recorder.record(SpanRecord::new(trace, root, 0, "request").at(0, 1_000));
//! recorder.record(
//!     SpanRecord::new(trace, recorder.next_id(), root, "execute")
//!         .at(100, 800)
//!         .attr_bool("cached", false),
//! );
//! let spans = recorder.snapshot();
//! assert_eq!(spans.len(), 2);
//! assert!(spans[0].is_root());
//! assert_eq!(spans[1].parent, root);
//! assert_eq!(recorder.dropped(), 0);
//! ```

use crate::json::{escape_into, JsonObject};
use crate::{Event, EventSink};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Renders a trace/span id in its fixed-width 16-digit hex wire form.
pub fn hex16(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses the 16-digit hex wire form of a trace/span id.
///
/// Returns `None` unless the input is exactly 16 ASCII hex digits.
pub fn parse_hex16(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// A typed span attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl AttrValue {
    fn json_into(&self, out: &mut String) {
        match self {
            AttrValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::Str(s) => escape_into(out, s),
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }

    /// Plain-text rendering, for wire payloads and display.
    pub fn render(&self) -> String {
        match self {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::Str(s) => s.clone(),
            AttrValue::Bool(b) => b.to_string(),
        }
    }
}

/// One timed operation inside a trace.
///
/// `parent == 0` marks a root span. `start_ns` is relative to the
/// recording process's [`SpanRecorder`] epoch, so spans from one daemon
/// order totally; durations are wall-clock nanoseconds.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to (one tree per request).
    pub trace: u64,
    /// This span's id, unique within the recording process.
    pub span: u64,
    /// Parent span id; `0` for the tree root.
    pub parent: u64,
    /// Operation name (`"request"`, `"execute"`, `"build_tree"`, …).
    pub name: &'static str,
    /// Start, in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Starts a span record with zero start/duration and no attributes.
    pub fn new(trace: u64, span: u64, parent: u64, name: &'static str) -> Self {
        SpanRecord {
            trace,
            span,
            parent,
            name,
            start_ns: 0,
            duration_ns: 0,
            attrs: Vec::new(),
        }
    }

    /// Sets start and duration (builder style).
    pub fn at(mut self, start_ns: u64, duration_ns: u64) -> Self {
        self.start_ns = start_ns;
        self.duration_ns = duration_ns;
        self
    }

    /// Appends an unsigned-integer attribute.
    pub fn attr_u64(mut self, key: &'static str, value: u64) -> Self {
        self.attrs.push((key, AttrValue::U64(value)));
        self
    }

    /// Appends a string attribute.
    pub fn attr_str(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.attrs.push((key, AttrValue::Str(value.into())));
        self
    }

    /// Appends a boolean attribute.
    pub fn attr_bool(mut self, key: &'static str, value: bool) -> Self {
        self.attrs.push((key, AttrValue::Bool(value)));
        self
    }

    /// Whether this span is the root of its trace.
    pub fn is_root(&self) -> bool {
        self.parent == 0
    }

    fn attrs_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, key);
            out.push(':');
            value.json_into(&mut out);
        }
        out.push('}');
        out
    }

    /// Serializes the span as one JSONL span-log line (no newline).
    pub fn to_jsonl(&self) -> String {
        let parent = if self.parent == 0 {
            String::new()
        } else {
            hex16(self.parent)
        };
        let mut o = JsonObject::new();
        o.str("trace", &hex16(self.trace))
            .str("span", &hex16(self.span))
            .str("parent", &parent)
            .str("name", self.name)
            .u64("start_ns", self.start_ns)
            .u64("dur_ns", self.duration_ns);
        if !self.attrs.is_empty() {
            o.raw("attrs", &self.attrs_json());
        }
        o.finish()
    }

    /// Serializes the span as one Chrome trace-event complete event
    /// (`"ph":"X"`, microsecond timestamps), for Perfetto and
    /// `chrome://tracing`. Each trace gets its own timeline row (`tid`).
    pub fn to_chrome_event(&self) -> String {
        let mut args = String::from("{");
        escape_into(&mut args, "trace");
        args.push(':');
        escape_into(&mut args, &hex16(self.trace));
        args.push(',');
        escape_into(&mut args, "span");
        args.push(':');
        escape_into(&mut args, &hex16(self.span));
        if self.parent != 0 {
            args.push(',');
            escape_into(&mut args, "parent");
            args.push(':');
            escape_into(&mut args, &hex16(self.parent));
        }
        for (key, value) in &self.attrs {
            args.push(',');
            escape_into(&mut args, key);
            args.push(':');
            value.json_into(&mut args);
        }
        args.push('}');
        let mut o = JsonObject::new();
        o.str("name", self.name)
            .str("cat", "bfdn")
            .str("ph", "X")
            .f64("ts", self.start_ns as f64 / 1_000.0)
            .f64("dur", self.duration_ns as f64 / 1_000.0)
            .u64("pid", 1)
            .u64("tid", self.trace % (1 << 32))
            .raw("args", &args);
        o.finish()
    }
}

/// A bounded ring of recent spans with a non-blocking write path.
///
/// Writers claim a slot by atomically advancing `head`, then `try_lock`
/// it: on contention (a concurrent reader or a wrapped-around writer
/// holds the slot) the span is counted in [`SpanRecorder::dropped`]
/// instead of blocking. Overwriting an older span when the ring wraps
/// also counts as a drop — so `dropped() == 0` certifies the ring still
/// holds every span ever recorded.
pub struct SpanRecorder {
    slots: Box<[Mutex<Option<SpanRecord>>]>,
    head: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
    next_id: AtomicU64,
    epoch: Instant,
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl SpanRecorder {
    /// Default ring capacity used by the daemon.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a recorder holding up to `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity).map(|_| Mutex::new(None)).collect();
        SpanRecorder {
            slots,
            head: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Nanoseconds since the recorder epoch — the timebase of every
    /// [`SpanRecord::start_ns`] recorded here.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Allocates the next process-unique span/trace id (starts at 1).
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records a span. Never blocks: slot contention or ring wrap-over
    /// increments the drop counter instead.
    pub fn record(&self, span: SpanRecord) {
        let slot = (self.head.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
        match self.slots[slot].try_lock() {
            Ok(mut cell) => {
                if cell.replace(span).is_some() {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                self.recorded.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Spans accepted into the ring so far.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans lost: overwritten by ring wrap-around or skipped because
    /// their slot was contended at write time.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Clones the ring's current spans, sorted by start time. May block
    /// briefly on slots being written; concurrent writers that hit a
    /// slot the snapshot holds count a drop rather than waiting.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|slot| {
                slot.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .clone()
            })
            .collect();
        spans.sort_by_key(|s| (s.start_ns, s.span));
        spans
    }
}

/// Output format of a [`TraceWriter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON span object per line.
    Jsonl,
    /// A Chrome trace-event JSON array (Perfetto, `chrome://tracing`).
    Chrome,
}

impl TraceFormat {
    /// Picks the format from a file extension: `.json` means Chrome
    /// trace-event, anything else means JSONL.
    pub fn from_path(path: &Path) -> TraceFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => TraceFormat::Chrome,
            _ => TraceFormat::Jsonl,
        }
    }
}

struct WriterState {
    out: Box<dyn Write + Send>,
    first: bool,
    closed: bool,
    error: Option<io::Error>,
}

/// Streams spans to a file in either export format.
///
/// Writes are serialized by an internal mutex and buffered; IO errors
/// are swallowed at write time (tracing must never take down serving)
/// and the first one is surfaced by [`TraceWriter::close`].
pub struct TraceWriter {
    state: Mutex<WriterState>,
    format: TraceFormat,
    written: AtomicU64,
}

impl std::fmt::Debug for TraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter")
            .field("format", &self.format)
            .field("written", &self.written())
            .finish()
    }
}

impl TraceWriter {
    /// Creates the file at `path`, picking the format from its
    /// extension ([`TraceFormat::from_path`]).
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error if the file cannot be created.
    pub fn create(path: &Path) -> io::Result<TraceWriter> {
        let format = TraceFormat::from_path(path);
        let file = File::create(path)?;
        Ok(TraceWriter::to_writer(BufWriter::new(file), format))
    }

    /// Wraps an arbitrary writer (for tests and in-memory export).
    pub fn to_writer(out: impl Write + Send + 'static, format: TraceFormat) -> TraceWriter {
        TraceWriter {
            state: Mutex::new(WriterState {
                out: Box::new(out),
                first: true,
                closed: false,
                error: None,
            }),
            format,
            written: AtomicU64::new(0),
        }
    }

    /// The export format.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// Spans written so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Appends one span. Errors are retained for [`TraceWriter::close`],
    /// not returned.
    pub fn write(&self, span: &SpanRecord) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if state.closed {
            return;
        }
        let result = match self.format {
            TraceFormat::Jsonl => {
                let line = span.to_jsonl();
                state
                    .out
                    .write_all(line.as_bytes())
                    .and_then(|()| state.out.write_all(b"\n"))
            }
            TraceFormat::Chrome => {
                let prefix: &[u8] = if state.first { b"[\n" } else { b",\n" };
                let event = span.to_chrome_event();
                state
                    .out
                    .write_all(prefix)
                    .and_then(|()| state.out.write_all(event.as_bytes()))
            }
        };
        match result {
            Ok(()) => {
                state.first = false;
                self.written.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                if state.error.is_none() {
                    state.error = Some(e);
                }
            }
        }
    }

    /// Terminates the stream (closing the Chrome JSON array), flushes,
    /// and surfaces the first IO error seen. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns the first write/flush error encountered over the
    /// writer's lifetime.
    pub fn close(&self) -> io::Result<()> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if state.closed {
            return Ok(());
        }
        state.closed = true;
        let terminator = match (self.format, state.first) {
            (TraceFormat::Chrome, true) => "[]\n",
            (TraceFormat::Chrome, false) => "\n]\n",
            (TraceFormat::Jsonl, _) => "",
        };
        let result = state
            .out
            .write_all(terminator.as_bytes())
            .and_then(|()| state.out.flush());
        match state.error.take() {
            Some(e) => Err(e),
            None => result,
        }
    }
}

/// A recorder plus an optional export stream — the daemon's single
/// recording facade: every span lands in the ring (serving the `trace`
/// wire request) and, when configured, in the export file.
#[derive(Debug)]
pub struct Tracer {
    recorder: SpanRecorder,
    writer: Option<TraceWriter>,
}

impl Tracer {
    /// Creates a tracer with a ring of `capacity` spans and no export.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            recorder: SpanRecorder::new(capacity),
            writer: None,
        }
    }

    /// Attaches an export stream (builder style).
    pub fn with_writer(mut self, writer: TraceWriter) -> Self {
        self.writer = Some(writer);
        self
    }

    /// The underlying ring recorder.
    pub fn recorder(&self) -> &SpanRecorder {
        &self.recorder
    }

    /// See [`SpanRecorder::now_ns`].
    pub fn now_ns(&self) -> u64 {
        self.recorder.now_ns()
    }

    /// See [`SpanRecorder::next_id`].
    pub fn next_id(&self) -> u64 {
        self.recorder.next_id()
    }

    /// Records a span in the ring and, when configured, the export
    /// stream. Never blocks on the ring; the export stream is a
    /// buffered file write behind a short critical section.
    pub fn record(&self, span: SpanRecord) {
        if let Some(writer) = &self.writer {
            writer.write(&span);
        }
        self.recorder.record(span);
    }

    /// Closes the export stream, if any. See [`TraceWriter::close`].
    ///
    /// # Errors
    ///
    /// Returns the first export IO error encountered.
    pub fn close(&self) -> io::Result<()> {
        match &self.writer {
            Some(writer) => writer.close(),
            None => Ok(()),
        }
    }
}

/// An [`EventSink`] that converts [`Event::PhaseTimer`] events into
/// back-dated child spans under a fixed parent.
///
/// `PhaseTimer` fires when a phase *finishes* with its measured
/// duration, so the span's start is reconstructed as `now - nanos`.
/// All other events pass through untouched (ignored).
pub struct SpanSink<'a> {
    tracer: &'a Tracer,
    trace: u64,
    parent: u64,
}

impl<'a> SpanSink<'a> {
    /// A sink recording phase spans under `parent` in `trace`.
    pub fn new(tracer: &'a Tracer, trace: u64, parent: u64) -> Self {
        SpanSink {
            tracer,
            trace,
            parent,
        }
    }
}

impl EventSink for SpanSink<'_> {
    fn emit(&mut self, event: &Event) {
        if let Event::PhaseTimer { phase, nanos } = *event {
            let end = self.tracer.now_ns();
            self.tracer.record(
                SpanRecord::new(self.trace, self.tracer.next_id(), self.parent, phase)
                    .at(end.saturating_sub(nanos), nanos),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn hex_roundtrip() {
        assert_eq!(hex16(0), "0000000000000000");
        assert_eq!(hex16(0xdead_beef), "00000000deadbeef");
        assert_eq!(parse_hex16("00000000deadbeef"), Some(0xdead_beef));
        assert_eq!(parse_hex16(&hex16(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_hex16("deadbeef"), None); // too short
        assert_eq!(parse_hex16("00000000deadbeeg"), None); // non-hex
        assert_eq!(parse_hex16("0x000000deadbeef"), None);
    }

    #[test]
    fn jsonl_shape() {
        let span = SpanRecord::new(1, 2, 0, "request")
            .at(10, 20)
            .attr_str("key", "a\"b")
            .attr_u64("items", 3)
            .attr_bool("cached", true);
        assert_eq!(
            span.to_jsonl(),
            r#"{"trace":"0000000000000001","span":"0000000000000002","parent":"","name":"request","start_ns":10,"dur_ns":20,"attrs":{"key":"a\"b","items":3,"cached":true}}"#
        );
        let child = SpanRecord::new(1, 3, 2, "execute").at(12, 5);
        assert!(child.to_jsonl().contains(r#""parent":"0000000000000002""#));
        assert!(!child.to_jsonl().contains("attrs"));
    }

    #[test]
    fn chrome_event_shape() {
        let span = SpanRecord::new(7, 9, 0, "request")
            .at(1_500, 2_000)
            .attr_u64("items", 4);
        let event = span.to_chrome_event();
        assert!(event.contains(r#""ph":"X""#), "{event}");
        assert!(event.contains(r#""ts":1.5"#), "{event}");
        assert!(event.contains(r#""dur":2"#), "{event}");
        assert!(event.contains(r#""pid":1"#), "{event}");
        assert!(event.contains(r#""tid":7"#), "{event}");
        assert!(
            event.contains(
                r#""args":{"trace":"0000000000000007","span":"0000000000000009","items":4}"#
            ),
            "{event}"
        );
    }

    #[test]
    fn recorder_keeps_everything_below_capacity() {
        let recorder = Arc::new(SpanRecorder::new(1024));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let id = recorder.next_id();
                        recorder.record(SpanRecord::new(t + 1, id, 0, "op").at(t * 1_000 + i, 1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(recorder.recorded(), 800);
        assert_eq!(recorder.dropped(), 0);
        let spans = recorder.snapshot();
        assert_eq!(spans.len(), 800);
        // Snapshot is sorted by start time.
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn recorder_counts_drops_above_capacity() {
        let recorder = SpanRecorder::new(64);
        for i in 0..100 {
            recorder.record(SpanRecord::new(1, i + 1, 0, "op").at(i, 1));
        }
        assert_eq!(recorder.recorded(), 100);
        assert_eq!(recorder.dropped(), 36); // 100 writes wrapped a 64-slot ring
        assert_eq!(recorder.snapshot().len(), 64);
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let recorder = SpanRecorder::new(4);
        let a = recorder.next_id();
        let b = recorder.next_id();
        assert!(a >= 1);
        assert_ne!(a, b);
    }

    #[test]
    fn jsonl_writer_streams_lines() {
        let path = std::env::temp_dir().join(format!("bfdn-trace-{}.jsonl", std::process::id()));
        let writer = TraceWriter::create(&path).unwrap();
        assert_eq!(writer.format(), TraceFormat::Jsonl);
        writer.write(&SpanRecord::new(1, 1, 0, "a").at(0, 10));
        writer.write(&SpanRecord::new(1, 2, 1, "b").at(1, 5));
        writer.close().unwrap();
        assert_eq!(writer.written(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""name":"a""#));
        assert!(lines[1].ends_with('}'));
    }

    #[test]
    fn chrome_writer_emits_a_json_array() {
        let path = std::env::temp_dir().join(format!("bfdn-trace-{}.json", std::process::id()));
        let writer = TraceWriter::create(&path).unwrap();
        assert_eq!(writer.format(), TraceFormat::Chrome);
        writer.write(&SpanRecord::new(1, 1, 0, "a").at(0, 10));
        writer.write(&SpanRecord::new(1, 2, 1, "b").at(1, 5));
        writer.close().unwrap();
        writer.close().unwrap(); // idempotent
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.starts_with("[\n"), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert_eq!(text.matches(r#""ph":"X""#).count(), 2);
    }

    #[test]
    fn empty_chrome_trace_is_valid_json() {
        let path =
            std::env::temp_dir().join(format!("bfdn-trace-empty-{}.json", std::process::id()));
        let writer = TraceWriter::create(&path).unwrap();
        writer.close().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text, "[]\n");
    }

    #[test]
    fn span_sink_backdates_phase_timers() {
        let tracer = Tracer::new(16);
        let parent = tracer.next_id();
        let mut sink = SpanSink::new(&tracer, 42, parent);
        // Back-dating saturates at the epoch; wait until there is a full
        // phase-duration of history so start/duration come out exact.
        while tracer.now_ns() < 1_000 {
            std::hint::spin_loop();
        }
        sink.emit(&Event::PhaseTimer {
            phase: "explore",
            nanos: 1_000,
        });
        sink.emit(&Event::Reanchor {
            robot: 0,
            depth: 1,
            anchor: 2,
        }); // ignored
        let spans = tracer.recorder().snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "explore");
        assert_eq!(spans[0].trace, 42);
        assert_eq!(spans[0].parent, parent);
        assert_eq!(spans[0].duration_ns, 1_000);
        assert!(spans[0].start_ns + 1_000 <= tracer.now_ns());
    }

    #[test]
    fn tracer_records_to_ring_and_writer() {
        let path = std::env::temp_dir().join(format!("bfdn-tracer-{}.jsonl", std::process::id()));
        let tracer = Tracer::new(8).with_writer(TraceWriter::create(&path).unwrap());
        tracer.record(SpanRecord::new(1, 1, 0, "request").at(0, 10));
        tracer.close().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(tracer.recorder().recorded(), 1);
        assert_eq!(text.lines().count(), 1);
    }
}
