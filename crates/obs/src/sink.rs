//! Event sinks: where instrumented components send their [`Event`]s.

use crate::Event;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::str::FromStr;

/// A consumer of [`Event`]s.
///
/// Instrumented hot paths are generic over their sink, so a disabled
/// ([`NullSink`]) run monomorphizes to the uninstrumented code; dynamic
/// dispatch (`&mut dyn EventSink`) is reserved for cold paths such as
/// BFDN's `Reanchor` procedure and sink composition.
pub trait EventSink {
    /// Consumes one event.
    fn emit(&mut self, event: &Event);

    /// Whether this sink observes anything at all. Hot paths use this to
    /// skip event *construction*; [`NullSink`] returns `false` and the
    /// guard folds away after monomorphization.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered output (a no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// The zero-cost default sink: observes nothing.
///
/// [`Simulator`](../bfdn_sim/struct.Simulator.html)s are generic over
/// their sink with `NullSink` as the default, so an unobserved run pays
/// nothing — every `emit` call and every `enabled()`-guarded event
/// construction is compiled out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline(always)]
    fn emit(&mut self, _: &Event) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// Buffers every event in memory — the test and assertion sink.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    events: Vec<Event>,
}

impl MemorySink {
    /// All events received so far, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events matching `pred`.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events.push(*event);
    }
}

/// Streams one JSON object per event to a writer — the persistent trace
/// format (`--trace-out`).
///
/// I/O errors do not interrupt the observed run; the first one is
/// retained and reported by [`JsonlSink::io_error`] (and by
/// [`JsonlSink::finish`]).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    line: String,
    events: u64,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            line: String::new(),
            events: 0,
            error: None,
        }
    }

    /// Number of events written.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The first I/O error encountered, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the writer, surfacing any deferred I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first write or flush error of the sink's lifetime.
    pub fn finish(mut self) -> io::Result<W> {
        match self.error.take() {
            Some(e) => Err(e),
            None => {
                self.out.flush()?;
                Ok(self.out)
            }
        }
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        self.line.push_str(&event.to_json());
        self.line.push('\n');
        if let Err(e) = self.out.write_all(self.line.as_bytes()) {
            self.error = Some(e);
            return;
        }
        self.events += 1;
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Broadcasts every event to a list of boxed sinks, for runs that want
/// e.g. a JSONL trace *and* live bound margins *and* a stderr log.
#[derive(Default)]
pub struct FanOut {
    sinks: Vec<Box<dyn EventSink>>,
}

impl FanOut {
    /// An empty fan-out (equivalent to [`NullSink`] until sinks are
    /// added).
    pub fn new() -> Self {
        FanOut::default()
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Builder-style [`FanOut::push`].
    #[must_use]
    pub fn with(mut self, sink: Box<dyn EventSink>) -> Self {
        self.push(sink);
        self
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Returns `true` if no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl EventSink for FanOut {
    fn emit(&mut self, event: &Event) {
        for sink in &mut self.sinks {
            sink.emit(event);
        }
    }

    fn enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

/// Verbosity of [`StderrLog`], ordered from silent to chatty.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Log nothing.
    #[default]
    Off,
    /// Phase timings only.
    Info,
    /// Plus reanchorings and stalls.
    Debug,
    /// Plus every round, edge discovery and urn step.
    Trace,
}

impl LogLevel {
    /// The accepted `--log` values.
    pub const NAMES: [&'static str; 4] = ["off", "info", "debug", "trace"];

    /// The level at which `event` is logged.
    pub fn of(event: &Event) -> LogLevel {
        match event {
            Event::PhaseTimer { .. } => LogLevel::Info,
            Event::Reanchor { .. } | Event::RobotStalled { .. } => LogLevel::Debug,
            Event::RoundCompleted { .. } | Event::EdgeDiscovered { .. } | Event::UrnStep { .. } => {
                LogLevel::Trace
            }
        }
    }
}

impl FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(LogLevel::Off),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            "trace" => Ok(LogLevel::Trace),
            other => Err(format!(
                "unknown log level `{other}` (one of: {})",
                Self::NAMES.join(", ")
            )),
        }
    }
}

/// Prints events at or below a [`LogLevel`] to stderr (`--log`).
#[derive(Clone, Copy, Debug)]
pub struct StderrLog {
    level: LogLevel,
}

impl StderrLog {
    /// A logger printing events whose level is at most `level`.
    pub fn new(level: LogLevel) -> Self {
        StderrLog { level }
    }
}

impl EventSink for StderrLog {
    fn emit(&mut self, event: &Event) {
        if LogLevel::of(event) <= self.level {
            eprintln!("[obs] {event}");
        }
    }

    fn enabled(&self) -> bool {
        self.level > LogLevel::Off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> [Event; 3] {
        [
            Event::Reanchor {
                robot: 0,
                depth: 1,
                anchor: 2,
            },
            Event::UrnStep {
                step: 0,
                from: 0,
                to: 1,
            },
            Event::PhaseTimer {
                phase: "t",
                nanos: 1,
            },
        ]
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.emit(&sample()[0]);
        s.flush();
    }

    #[test]
    fn memory_sink_records_in_order() {
        let mut s = MemorySink::default();
        for e in sample() {
            s.emit(&e);
        }
        assert_eq!(s.events().len(), 3);
        assert_eq!(s.count(|e| matches!(e, Event::UrnStep { .. })), 1);
        assert_eq!(s.events()[0].tag(), "reanchor");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut s = JsonlSink::new(Vec::new());
        for e in sample() {
            s.emit(&e);
        }
        assert_eq!(s.events(), 3);
        let bytes = s.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with(r#"{"event":"reanchor""#));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn jsonl_sink_retains_first_io_error() {
        /// A writer that always fails.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("broken"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut s = JsonlSink::new(Broken);
        s.emit(&sample()[0]);
        s.emit(&sample()[1]);
        assert_eq!(s.events(), 0);
        assert!(s.io_error().is_some());
        assert!(s.finish().is_err());
    }

    #[test]
    fn fanout_broadcasts() {
        let mut fan = FanOut::new().with(Box::new(MemorySink::default()));
        assert!(fan.enabled());
        assert_eq!(fan.len(), 1);
        fan.emit(&sample()[0]);
        fan.flush();
        assert!(!FanOut::new().enabled());
    }

    #[test]
    fn log_levels_parse_and_order() {
        assert_eq!("debug".parse::<LogLevel>().unwrap(), LogLevel::Debug);
        assert!("loud".parse::<LogLevel>().is_err());
        assert!(LogLevel::Off < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        assert!(LogLevel::Debug < LogLevel::Trace);
        assert_eq!(
            LogLevel::of(&Event::PhaseTimer {
                phase: "t",
                nanos: 0
            }),
            LogLevel::Info
        );
        assert!(!StderrLog::new(LogLevel::Off).enabled());
        assert!(StderrLog::new(LogLevel::Info).enabled());
    }
}
