//! Derive macros for the offline `serde` stand-in (`vendor/serde`).
//!
//! Unlike a compile-only stub, these derives emit *working* impls of the
//! stand-in's `Serialize`/`Deserialize` traits over its self-describing
//! `serde::Value` data model, so derived types round-trip for real (the
//! `serde_roundtrip` integration tests in this workspace exercise that).
//!
//! Written against `proc_macro` only — the container has no `syn`/`quote`
//! — so the item is parsed by hand. Supported shapes (everything this
//! workspace derives on):
//!
//! - non-generic structs: named fields, tuple/newtype, unit;
//! - non-generic enums with unit, newtype, tuple, and struct variants;
//! - the `#[serde(skip)]` field attribute on named fields (field is not
//!   serialized; deserialization fills it with `Default::default()`).
//!
//! Generics and any other `#[serde(...)]` attribute are rejected with a
//! `compile_error!` rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let source = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Ser => gen_serialize(&item),
            Mode::De => gen_deserialize(&item),
        },
        Err(msg) => format!("::core::compile_error!({:?});", msg),
    };
    source
        .parse()
        .unwrap_or_else(|e| panic!("serde stand-in derive emitted unparsable code: {e}\n{source}"))
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    /// Identifier for named fields, decimal index for tuple fields.
    name: String,
    skip: bool,
}

enum Body {
    Named(Vec<Field>),
    Tuple(Vec<Field>),
    Unit,
}

struct Variant {
    name: String,
    body: Body,
}

enum Item {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn peek_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consumes leading `#[...]` attributes; returns whether any of them
    /// was `#[serde(skip)]`. Any other `#[serde(...)]` attribute errors.
    fn take_attrs(&mut self) -> Result<bool, String> {
        let mut skip = false;
        while self.peek_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => return Err(format!("expected `[...]` after `#`, found {other:?}")),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            if let Some(TokenTree::Ident(head)) = inner.first() {
                if head.to_string() == "serde" {
                    let args = match inner.get(1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            g.stream().to_string()
                        }
                        _ => String::new(),
                    };
                    if args.trim() == "skip" {
                        skip = true;
                    } else {
                        return Err(format!(
                            "the offline serde stand-in only supports #[serde(skip)], \
                             found #[serde({args})]"
                        ));
                    }
                }
            }
        }
        Ok(skip)
    }

    /// Consumes `pub`, `pub(crate)`, `pub(super)`, ... if present.
    fn take_visibility(&mut self) {
        if self.peek_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Consumes tokens of a type (or discriminant expression) up to a
    /// top-level `,`, tracking `<`/`>` nesting so commas inside generic
    /// arguments don't terminate early. The comma itself is consumed.
    fn skip_to_top_level_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    cur.take_attrs()?;
    cur.take_visibility();
    let kind = cur.expect_ident()?;
    let name = cur.expect_ident()?;
    if cur.peek_punct('<') {
        return Err(format!(
            "the offline serde stand-in derive does not support generics (on `{name}`)"
        ));
    }
    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            body: parse_struct_body(&mut cur)?,
        }),
        "enum" => {
            let group = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(group.stream())?,
            })
        }
        other => Err(format!("cannot derive serde stand-in traits for `{other}`")),
    }
}

fn parse_struct_body(cur: &mut Cursor) -> Result<Body, String> {
    match cur.peek() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let stream = g.stream();
            cur.next();
            Ok(Body::Named(parse_named_fields(stream)?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let stream = g.stream();
            cur.next();
            Ok(Body::Tuple(parse_tuple_fields(stream)?))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Body::Unit),
        None => Ok(Body::Unit),
        other => Err(format!("unexpected struct body: {other:?}")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let skip = cur.take_attrs()?;
        if cur.at_end() {
            break;
        }
        cur.take_visibility();
        let name = cur.expect_ident()?;
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        cur.skip_to_top_level_comma();
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    let mut index = 0usize;
    while !cur.at_end() {
        let skip = cur.take_attrs()?;
        if cur.at_end() {
            break;
        }
        if skip {
            return Err("#[serde(skip)] on tuple fields is not supported by the stand-in".into());
        }
        cur.take_visibility();
        cur.skip_to_top_level_comma();
        fields.push(Field {
            name: index.to_string(),
            skip: false,
        });
        index += 1;
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.take_attrs()?;
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident()?;
        let body = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                cur.next();
                Body::Tuple(parse_tuple_fields(stream)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                cur.next();
                Body::Named(parse_named_fields(stream)?)
            }
            _ => Body::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator comma.
        if cur.peek_punct('=') {
            cur.skip_to_top_level_comma();
        } else if cur.peek_punct(',') {
            cur.next();
        }
        variants.push(Variant { name, body });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, body } => {
            let value = struct_ser_value(name, body, "self.", true);
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {value} }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&enum_ser_arm(name, v));
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

/// Serialize expression for a struct body. `access` prefixes each field
/// (`self.` for structs, `__f_` bindings for enum variants, selected via
/// `deref`: struct fields need `&`, match bindings are already refs).
fn struct_ser_value(name: &str, body: &Body, access: &str, deref: bool) -> String {
    let amp = if deref { "&" } else { "" };
    match body {
        Body::Named(fields) => {
            let items: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "({:?}, ::serde::Serialize::serialize({amp}{access}{})),",
                        f.name, f.name
                    )
                })
                .collect();
            format!("::serde::Value::Struct {{ name: {name:?}, fields: ::std::vec![{items}] }}")
        }
        Body::Tuple(fields) if fields.len() == 1 => format!(
            "::serde::Value::NewtypeStruct {{ name: {name:?}, \
             value: ::std::boxed::Box::new(::serde::Serialize::serialize({amp}{access}0)) }}"
        ),
        Body::Tuple(fields) => {
            let items: String = fields
                .iter()
                .map(|f| format!("::serde::Serialize::serialize({amp}{access}{}),", f.name))
                .collect();
            format!(
                "::serde::Value::TupleStruct {{ name: {name:?}, values: ::std::vec![{items}] }}"
            )
        }
        Body::Unit => format!("::serde::Value::UnitStruct {{ name: {name:?} }}"),
    }
}

fn enum_ser_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.body {
        Body::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::UnitVariant {{ name: {enum_name:?}, variant: {vname:?} }},"
        ),
        Body::Tuple(fields) if fields.len() == 1 => format!(
            "{enum_name}::{vname}(__f0) => ::serde::Value::NewtypeVariant {{ \
             name: {enum_name:?}, variant: {vname:?}, \
             value: ::std::boxed::Box::new(::serde::Serialize::serialize(__f0)) }},"
        ),
        Body::Tuple(fields) => {
            let binds: Vec<String> = (0..fields.len()).map(|i| format!("__f{i}")).collect();
            let items: String = binds
                .iter()
                .map(|b| format!("::serde::Serialize::serialize({b}),"))
                .collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::TupleVariant {{ \
                 name: {enum_name:?}, variant: {vname:?}, values: ::std::vec![{items}] }},",
                binds.join(", ")
            )
        }
        Body::Named(fields) => {
            let binds: String = fields
                .iter()
                .map(|f| format!("{}: __f_{},", f.name, f.name))
                .collect();
            let items: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "({:?}, ::serde::Serialize::serialize(__f_{})),",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::Value::StructVariant {{ \
                 name: {enum_name:?}, variant: {vname:?}, fields: ::std::vec![{items}] }},"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let (name, arms) = match item {
        Item::Struct { name, body } => (name, struct_de_arm(name, body)),
        Item::Enum { name, variants } => {
            let arms: String = variants.iter().map(|v| enum_de_arm(name, v)).collect();
            (name, arms)
        }
    };
    let kind = match item {
        Item::Struct { .. } => "struct",
        Item::Enum { .. } => "enum",
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __value {{\n\
                     {arms}\n\
                     __other => ::std::result::Result::Err(\
                         ::serde::Error::unexpected(\
                             ::std::concat!({kind:?}, \" `\", {name:?}, \"`\"), __other)),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}

/// Constructor expression for a named-field body from `__fields`.
fn named_construct(path: &str, fields: &[Field]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::std::default::Default::default(),", f.name)
            } else {
                format!("{}: ::serde::__field(__fields, {:?})?,", f.name, f.name)
            }
        })
        .collect();
    format!("::std::result::Result::Ok({path} {{ {inits} }})")
}

fn struct_de_arm(name: &str, body: &Body) -> String {
    match body {
        Body::Named(fields) => format!(
            "::serde::Value::Struct {{ name: {name:?}, fields: __fields }} => {},",
            named_construct(name, fields)
        ),
        Body::Tuple(fields) if fields.len() == 1 => format!(
            "::serde::Value::NewtypeStruct {{ name: {name:?}, value: __v }} => \
             ::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(&**__v)?)),"
        ),
        Body::Tuple(fields) => {
            let n = fields.len();
            let items: String = (0..n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__vs[{i}])?,"))
                .collect();
            format!(
                "::serde::Value::TupleStruct {{ name: {name:?}, values: __vs }} => {{\n\
                     ::serde::__expect_len(__vs, {n}, {name:?})?;\n\
                     ::std::result::Result::Ok({name}({items}))\n\
                 }},"
            )
        }
        Body::Unit => format!(
            "::serde::Value::UnitStruct {{ name: {name:?} }} => \
             ::std::result::Result::Ok({name}),"
        ),
    }
}

fn enum_de_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    let path = format!("{enum_name}::{vname}");
    match &v.body {
        Body::Unit => format!(
            "::serde::Value::UnitVariant {{ name: {enum_name:?}, variant: {vname:?} }} => \
             ::std::result::Result::Ok({path}),"
        ),
        Body::Tuple(fields) if fields.len() == 1 => format!(
            "::serde::Value::NewtypeVariant {{ \
                 name: {enum_name:?}, variant: {vname:?}, value: __v }} => \
             ::std::result::Result::Ok({path}(::serde::Deserialize::deserialize(&**__v)?)),"
        ),
        Body::Tuple(fields) => {
            let n = fields.len();
            let items: String = (0..n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__vs[{i}])?,"))
                .collect();
            format!(
                "::serde::Value::TupleVariant {{ \
                     name: {enum_name:?}, variant: {vname:?}, values: __vs }} => {{\n\
                     ::serde::__expect_len(__vs, {n}, {path:?})?;\n\
                     ::std::result::Result::Ok({path}({items}))\n\
                 }},"
            )
        }
        Body::Named(fields) => format!(
            "::serde::Value::StructVariant {{ \
                 name: {enum_name:?}, variant: {vname:?}, fields: __fields }} => {},",
            named_construct(&path, fields)
        ),
    }
}
