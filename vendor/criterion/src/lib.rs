//! Committed offline stand-in for `criterion` that performs *real*
//! measurement: each benchmark body is warmed up, then timed over an
//! adaptive number of iterations, and a mean-per-iteration estimate is
//! printed in criterion-like form.
//!
//! Divergences from upstream (by design of an offline stand-in): no
//! statistical analysis (outlier rejection, confidence intervals,
//! regressions against saved baselines), no HTML reports, and
//! `sample_size` only scales the measurement budget. The numbers are
//! honest wall-clock means — good enough for relative comparisons in an
//! offline container, not a substitute for upstream criterion's
//! statistics. See `vendor/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark (scaled by `sample_size`).
const BASE_MEASURE: Duration = Duration::from_millis(60);
const WARMUP: Duration = Duration::from_millis(20);

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchGroup {
        BenchGroup {
            name: name.to_owned(),
            sample_size: 100,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 100, &mut f);
        self
    }
}

pub struct BenchGroup {
    name: String,
    sample_size: usize,
}

impl BenchGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        estimate_ns: None,
        budget: budget_for(sample_size),
    };
    f(&mut b);
    match b.estimate_ns {
        Some(ns) => println!(
            "{label:<40} time: [{}]  (offline stand-in: mean)",
            fmt_ns(ns)
        ),
        None => println!("{label:<40} time: [not measured — Bencher::iter never called]"),
    }
}

fn budget_for(sample_size: usize) -> Duration {
    // Upstream's default sample_size is 100; scale the time budget
    // proportionally but keep it within CI-friendly bounds.
    let scaled = BASE_MEASURE.as_millis() as u64 * sample_size as u64 / 100;
    Duration::from_millis(scaled.clamp(20, 500))
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

pub struct Bencher {
    estimate_ns: Option<f64>,
    budget: Duration,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warmup: at least one run, until the warmup window elapses.
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() >= WARMUP {
                break;
            }
        }
        // Measurement: batches of growing size until the budget is spent.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut batch: u64 = 1;
        while total < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            iters += batch;
            batch = (batch * 2).min(1 << 20);
        }
        self.estimate_ns = Some(total.as_nanos() as f64 / iters as f64);
    }
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The stand-in must produce a real, positive timing estimate.
    #[test]
    fn iter_measures_something_positive() {
        let mut b = Bencher {
            estimate_ns: None,
            budget: Duration::from_millis(5),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
            acc
        });
        let ns = b.estimate_ns.expect("iter must record an estimate");
        assert!(ns > 0.0 && ns.is_finite());
    }

    /// A slower body must measure slower than a faster one — the
    /// estimates are real measurements, not placeholders.
    #[test]
    fn estimates_order_fast_vs_slow() {
        let measure = |work: u64| {
            let mut b = Bencher {
                estimate_ns: None,
                budget: Duration::from_millis(10),
            };
            b.iter(|| {
                let mut x = 0u64;
                for i in 0..black_box(work) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                x
            });
            b.estimate_ns.unwrap()
        };
        let fast = measure(10);
        let slow = measure(10_000);
        assert!(slow > fast * 5.0, "slow {slow} ns vs fast {fast} ns");
    }
}
