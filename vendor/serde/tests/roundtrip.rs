//! Derive + impl round-trip coverage for the offline serde stand-in:
//! every item shape the derive supports must survive
//! `to_value` → `from_value` unchanged, and `#[serde(skip)]` must skip.

use serde::{from_value, to_value, Deserialize, Serialize, Value};
use std::collections::HashMap;

fn roundtrip<T: Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(t: &T) {
    let v = to_value(t);
    let back: T = from_value(&v).unwrap_or_else(|e| panic!("{e} (value: {v:?})"));
    assert_eq!(&back, t);
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Named {
    a: u64,
    b: String,
    c: Option<i32>,
    d: Vec<bool>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Newtype(u32);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Pair(u8, String);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Marker;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Shape {
    Dot,
    Circle(f64),
    Segment(i64, i64),
    Poly { sides: Vec<u16>, closed: bool },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Nested {
    boxed: Box<Newtype>,
    shapes: Vec<Shape>,
    table: HashMap<String, u64>,
    pair: (u32, String),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WithSkip {
    kept: u64,
    #[serde(skip)]
    scratch: Vec<u64>,
}

#[test]
fn named_struct_roundtrips() {
    roundtrip(&Named {
        a: u64::MAX,
        b: "hello \"world\"".into(),
        c: Some(-42),
        d: vec![true, false],
    });
    roundtrip(&Named {
        a: 0,
        b: String::new(),
        c: None,
        d: vec![],
    });
}

#[test]
fn tuple_and_unit_structs_roundtrip() {
    roundtrip(&Newtype(7));
    roundtrip(&Pair(255, "x".into()));
    roundtrip(&Marker);
}

#[test]
fn every_enum_variant_shape_roundtrips() {
    roundtrip(&Shape::Dot);
    roundtrip(&Shape::Circle(2.5));
    roundtrip(&Shape::Segment(-3, i64::MAX));
    roundtrip(&Shape::Poly {
        sides: vec![3, 4, 5],
        closed: true,
    });
}

#[test]
fn nested_containers_roundtrip() {
    let mut table = HashMap::new();
    table.insert("k".to_string(), 9u64);
    roundtrip(&Nested {
        boxed: Box::new(Newtype(1)),
        shapes: vec![Shape::Dot, Shape::Circle(0.0)],
        table,
        pair: (5, "five".into()),
    });
}

#[test]
fn skip_fields_are_not_serialized_and_deserialize_to_default() {
    let original = WithSkip {
        kept: 11,
        scratch: vec![1, 2, 3],
    };
    let v = to_value(&original);
    match &v {
        Value::Struct { name, fields } => {
            assert_eq!(*name, "WithSkip");
            assert_eq!(
                fields.len(),
                1,
                "skipped field must not be serialized: {fields:?}"
            );
            assert_eq!(fields[0].0, "kept");
        }
        other => panic!("expected struct value, got {other:?}"),
    }
    let back: WithSkip = from_value(&v).unwrap();
    assert_eq!(back.kept, 11);
    assert_eq!(back.scratch, Vec::<u64>::new());
}

#[test]
fn wrong_shapes_error_instead_of_defaulting() {
    assert!(from_value::<Named>(&Value::U64(1)).is_err());
    assert!(from_value::<Newtype>(&to_value(&Pair(1, "a".into()))).is_err());
    // Missing field: a Named value with a field renamed away.
    let v = Value::Struct {
        name: "Named",
        fields: vec![("a", Value::U64(1))],
    };
    let err = from_value::<Named>(&v).unwrap_err();
    assert!(err.to_string().contains("missing field"), "{err}");
}

#[test]
fn std_impl_edge_cases() {
    roundtrip(&Option::<u8>::None);
    roundtrip(&Some(Box::new(3u64)));
    roundtrip(&[1u32, 2, 3]);
    roundtrip(&(-1i8, "s".to_string(), 2.5f64, 'c'));
    assert!(from_value::<u8>(&Value::U64(256)).is_err());
    assert!(from_value::<u64>(&Value::I64(-1)).is_err());
}
