//! Committed offline stand-in for `serde` with *working* serialization.
//!
//! The container building this repository has no network access, so the
//! real `serde` cannot be fetched. Instead of a compile-only stub whose
//! derives emit nothing, this stand-in provides a functional
//! serialization layer: `Serialize`/`Deserialize` traits over a
//! self-describing [`Value`] tree, derive macros (re-exported from the
//! sibling `serde_derive` stand-in) that emit real impls, and impls for
//! the std types this workspace serializes. Derived protocol types
//! genuinely round-trip — the `serde_roundtrip` integration tests assert
//! it.
//!
//! # Divergences from upstream serde (by design)
//!
//! - Serialization targets the in-crate [`Value`] tree rather than
//!   upstream's `Serializer`/`Deserializer` visitor pair, so
//!   `Serialize::serialize` takes no serializer argument and
//!   [`Deserialize`] has no `'de` lifetime ([`de::DeserializeOwned`] is a
//!   blanket alias). Format crates (`serde_json`, ...) therefore cannot
//!   plug in — this workspace deliberately hand-rolls its wire formats
//!   and uses the serde feature only for structural (de)serialization of
//!   its protocol types.
//! - The derive supports non-generic structs/enums and `#[serde(skip)]`
//!   only; anything else is a compile error, never a silent misencode.
//!
//! See `vendor/README.md` for the policy and the swap-to-upstream path.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized value — the stand-in's data model,
/// mirroring the shape vocabulary of serde's own model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Unit,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Char(char),
    Str(String),
    Option(Option<Box<Value>>),
    Seq(Vec<Value>),
    Map(Vec<(Value, Value)>),
    Struct {
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    },
    NewtypeStruct {
        name: &'static str,
        value: Box<Value>,
    },
    TupleStruct {
        name: &'static str,
        values: Vec<Value>,
    },
    UnitStruct {
        name: &'static str,
    },
    UnitVariant {
        name: &'static str,
        variant: &'static str,
    },
    NewtypeVariant {
        name: &'static str,
        variant: &'static str,
        value: Box<Value>,
    },
    TupleVariant {
        name: &'static str,
        variant: &'static str,
        values: Vec<Value>,
    },
    StructVariant {
        name: &'static str,
        variant: &'static str,
        fields: Vec<(&'static str, Value)>,
    },
}

impl Value {
    /// Short human-readable description used in error messages.
    pub fn kind(&self) -> String {
        match self {
            Value::Unit => "unit".into(),
            Value::Bool(_) => "bool".into(),
            Value::I64(_) => "i64".into(),
            Value::U64(_) => "u64".into(),
            Value::F64(_) => "f64".into(),
            Value::Char(_) => "char".into(),
            Value::Str(_) => "string".into(),
            Value::Option(_) => "option".into(),
            Value::Seq(_) => "sequence".into(),
            Value::Map(_) => "map".into(),
            Value::Struct { name, .. } => format!("struct `{name}`"),
            Value::NewtypeStruct { name, .. } => format!("newtype struct `{name}`"),
            Value::TupleStruct { name, .. } => format!("tuple struct `{name}`"),
            Value::UnitStruct { name } => format!("unit struct `{name}`"),
            Value::UnitVariant { name, variant }
            | Value::NewtypeVariant { name, variant, .. }
            | Value::TupleVariant { name, variant, .. }
            | Value::StructVariant { name, variant, .. } => format!("variant `{name}::{variant}`"),
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    pub fn unexpected(expected: &str, got: &Value) -> Self {
        Error {
            msg: format!("expected {expected}, found {}", got.kind()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A value that can serialize itself into the stand-in data model.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// A value that can reconstruct itself from the stand-in data model.
pub trait Deserialize: Sized {
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

pub mod ser {
    pub use crate::{Error, Serialize};
}

pub mod de {
    pub use crate::{Deserialize, Error};

    /// Upstream's owned-deserialization marker; with no `'de` lifetime in
    /// the stand-in it is simply a blanket alias for [`Deserialize`].
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Serializes `value` into the stand-in data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Reconstructs a `T` from the stand-in data model.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

// ---------------------------------------------------------------------------
// Derive support helpers (referenced by generated code; not public API)
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub fn __field<T: Deserialize>(
    fields: &[(&'static str, Value)],
    name: &'static str,
) -> Result<T, Error> {
    match fields.iter().find(|(n, _)| *n == name) {
        Some((_, v)) => T::deserialize(v),
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

#[doc(hidden)]
pub fn __expect_len(values: &[Value], want: usize, ty: &str) -> Result<(), Error> {
    if values.len() == want {
        Ok(())
    } else {
        Err(Error::custom(format!(
            "{ty} expects {want} values, found {}",
            values.len()
        )))
    }
}

// ---------------------------------------------------------------------------
// Impls for std types
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Unit
    }
}

impl Deserialize for () {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Unit => Ok(()),
            other => Err(Error::unexpected("unit", other)),
        }
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::unexpected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        Error::custom(format!("{n} out of range for i64"))
                    })?,
                    other => return Err(Error::unexpected("signed integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(Error::unexpected("float", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Char(*self)
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Char(c) => Ok(*c),
            other => Err(Error::unexpected("char", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::unexpected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        Value::Option(self.as_ref().map(|t| Box::new(t.serialize())))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Option(None) => Ok(None),
            Value::Option(Some(v)) => Ok(Some(T::deserialize(v)?)),
            other => Err(Error::unexpected("option", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, found {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(value)?))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Seq(items) => {
                        __expect_len(items, LEN, "tuple")?;
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::unexpected("tuple sequence", other)),
                }
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.serialize(), v.serialize()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::deserialize(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::unexpected("map", other)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.serialize(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::deserialize(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::unexpected("map", other)),
        }
    }
}
