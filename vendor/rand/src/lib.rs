//! Committed offline stand-in for `rand` 0.9 with the API surface this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, and the
//! `random`/`random_range`/`random_bool` methods of `Rng`).
//!
//! # The stream is splitmix64, not ChaCha12 — and it is pinned
//!
//! Upstream `rand` 0.9 backs `StdRng` with ChaCha12. This stand-in uses
//! splitmix64, so seeded streams differ from upstream per seed. That is a
//! deliberate, documented trade-off for a dependency-free offline build —
//! and it is **load-bearing for reproducibility**: every seed-derived
//! artifact committed to this repository (`BENCH_experiments.json`,
//! `results/`, golden values in seed-dependent tests) was generated with
//! *this* stream (`Cargo.lock` has pinned this crate since the artifacts
//! were recorded). Swapping in upstream `rand` — or "fixing" this
//! generator — changes every seeded run and requires regenerating and
//! recommitting all of those artifacts in the same change. The
//! `stream_is_pinned` test below exists to make any such change loud.
//!
//! See `vendor/README.md` for the full policy and the swap procedure.

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub trait Random: Sized {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

impl_range!(usize, u64, u32, u16, u8, i64, i32);

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Random>::random(self) < p
    }
}

pub use Rng as RngCore;

pub mod rngs {
    use super::{splitmix, Rng, SeedableRng};

    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix(&mut self.state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    /// Golden values freezing the seeded stream. Every seed-derived
    /// artifact committed to the repository depends on these exact
    /// outputs — if this test fails, either revert the generator change
    /// or regenerate and recommit all seeded artifacts alongside it.
    #[test]
    fn stream_is_pinned() {
        let mut r = StdRng::seed_from_u64(0);
        assert_eq!(
            [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
            [
                0xe220a8397b1dcdaf,
                0x6e789e6aa1b965f4,
                0x06c45d188009454f,
                0xf88bb8a8724c81ec,
            ]
        );
        let mut r = StdRng::seed_from_u64(42);
        assert_eq!(
            [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
            [
                0xbdd732262feb6e95,
                0x28efe333b266f103,
                0x47526757130f9f52,
                0x581ce1ff0e4ae394,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream_distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = r.random_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn random_f64_is_unit_interval_and_bool_edges_hold() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
        for _ in 0..100 {
            assert!(!r.random_bool(0.0));
            assert!(r.random_bool(1.0));
        }
    }
}
