//! Committed offline stand-in for `proptest` that actually *runs*
//! property tests: strategies generate real pseudo-random inputs and the
//! `proptest!` macro executes each property over many generated cases.
//!
//! # Divergences from upstream proptest (by design of an offline stand-in)
//!
//! - **No shrinking.** A failing case reports the case number and the
//!   test's RNG seed; reruns are deterministic (the seed is derived from
//!   the test's module path and name), so failures reproduce exactly.
//! - The default case count is 64 (upstream: 256); override per-test with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` as usual, or
//!   globally with the `PROPTEST_CASES` environment variable.
//! - `prop_oneof!` ignores weights and picks uniformly.
//!
//! The supported surface is what this workspace uses: `any`, integer
//! ranges, `Just`, `prop::collection::vec`, `prop_map` / `prop_filter` /
//! `prop_flat_map` / `boxed`, `prop_oneof!`, `prop_assert*!`,
//! `prop_assume!`, and multi-function `proptest!` blocks with an optional
//! `#![proptest_config(...)]` header.

use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// RNG (self-contained splitmix64; deterministic per test)
// ---------------------------------------------------------------------------

/// The deterministic RNG driving generation. Seeded from the test's
/// module path and name, so each test sees a stable stream across runs
/// and machines.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Stable seed for a named test, overridable via `PROPTEST_RNG_SEED`.
    pub fn deterministic(test_path: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return TestRng::from_seed(seed);
            }
        }
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    pub fn seed(&self) -> u64 {
        self.state
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Config and case-level errors
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property is violated — the whole test fails.
    Fail(String),
    /// The case does not satisfy a `prop_assume!`; it is skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "assumption not met: {m}"),
        }
    }
}

/// Runs `cases` generated cases of `body`. Used by the `proptest!`
/// expansion; not part of the public proptest API.
#[doc(hidden)]
pub fn __run_cases<F>(test_path: &str, config: ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::deterministic(test_path);
    let initial_seed = rng.seed();
    let cases = config.cases.max(1);
    let mut rejected = 0u32;
    let max_rejects = cases.saturating_mul(16).max(256);
    let mut ran = 0u32;
    while ran < cases {
        let case_seed = rng.seed();
        match body(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest stand-in: too many rejected cases ({rejected}) in {test_path} \
                         (ran {ran}/{cases}; initial seed {initial_seed})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest stand-in: case {} of {cases} failed in {test_path}\n{msg}\n\
                     (case seed {case_seed}, initial seed {initial_seed}; rerun with \
                     PROPTEST_RNG_SEED={case_seed} to start at this case; no shrinking)",
                    ran + 1
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of values. Unlike upstream there is no value tree or
/// shrinking: `generate` produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map(self, f)
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter(self, f, reason)
    }

    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap(self, f)
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

pub struct Map<S, F>(S, F);

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.1)(self.0.generate(rng))
    }
}

pub struct Filter<S, F>(S, F, &'static str);

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.0.generate(rng);
            if (self.1)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.2);
    }
}

pub struct FlatMap<S, F>(S, F);

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;

    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.1)(self.0.generate(rng)).generate(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed strategies — the engine behind
/// `prop_oneof!` (weights are ignored by the stand-in).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Types with a default whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(width + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count bound for [`vec`]; built from ranges or an exact
    /// count like upstream's `SizeRange`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Runs each contained test function over many generated cases. Supports
/// an optional `#![proptest_config(...)]` header and any number of
/// `fn name(arg in strategy, ...) { body }` items (attributes and doc
/// comments on the functions pass through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __path = ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name));
                $(let $arg = &$strat;)*
                $crate::__run_cases(__path, __config, |__rng| {
                    $(let $arg = $crate::Strategy::generate($arg, __rng);)*
                    let _: () = $body;
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("prop_assert!(", ::std::stringify!($cond), ")"),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "prop_assert_eq!({}, {}): {:?} != {:?}",
                ::std::stringify!($left), ::std::stringify!($right), __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!($($fmt)*)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "prop_assert_ne!({}, {}): both {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                __l,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(::std::stringify!(
                $cond
            )));
        }
    };
}

/// Uniform choice among the listed strategies (weights, if given, are
/// ignored by the stand-in). All options must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        pub use crate::collection;
    }
}

// ---------------------------------------------------------------------------
// Self-tests: the stand-in must actually generate and actually fail
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn generation_is_deterministic_per_name_and_varied_within_a_run() {
        let strat = prop::collection::vec(any::<u8>(), 0..50);
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        let va: Vec<Vec<u8>> = (0..20).map(|_| strat.generate(&mut a)).collect();
        let vb: Vec<Vec<u8>> = (0..20).map(|_| strat.generate(&mut b)).collect();
        assert_eq!(va, vb);
        assert!(va.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }

    #[test]
    fn ranges_and_vec_sizes_respect_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..500 {
            let n = (5usize..9).generate(&mut rng);
            assert!((5..9).contains(&n));
            let v = prop::collection::vec(any::<u8>(), 2..=4).generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_seed(4);
        let s = (0usize..10)
            .prop_map(|n| n * 2)
            .prop_filter("odd", |n| n % 2 == 0)
            .prop_flat_map(|n| prop::collection::vec(Just(n), 1..3));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.iter().all(|x| x % 2 == 0 && *x < 20));
        }
        let u = prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..50 {
            assert!(matches!(u.generate(&mut rng), 1 | 2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The macro really runs bodies: a trivially true property with
        /// generated inputs and an assumption.
        #[test]
        fn macro_runs_generated_cases(x in 0u32..1000, v in prop::collection::vec(any::<u8>(), 0..16)) {
            prop_assume!(x != 999);
            prop_assert!(x < 1000);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 1000);
        }
    }

    #[test]
    fn failing_property_actually_fails() {
        let result = std::panic::catch_unwind(|| {
            super::__run_cases(
                "self_test::failing",
                ProptestConfig::with_cases(64),
                |rng| {
                    let x = (0u32..100).generate(rng);
                    prop_assert!(x < 50, "x = {x} escaped the bound");
                    Ok(())
                },
            );
        });
        let err = result.expect_err("a violated property must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("escaped the bound"), "{msg}");
    }
}
