//! Umbrella crate for the BFDN reproduction workspace.
//!
//! This crate re-exports the workspace members so that the runnable
//! examples under `examples/` and the integration tests under `tests/`
//! can exercise the whole public API through a single dependency.
//!
//! See the individual crates for the actual implementation:
//!
//! * [`bfdn`] — the paper's contribution (Algorithm 1 and its variants),
//! * [`bfdn_trees`] — tree/graph substrates and workload generators,
//! * [`bfdn_sim`] — the synchronous exploration engine,
//! * [`urn_game`] — the two-player balls-in-urns game of Section 3,
//! * [`bfdn_baselines`] — DFS, offline split traversal and CTE,
//! * [`bfdn_analysis`] — guarantee formulas and the Figure 1 region map.

pub use bfdn;
pub use bfdn_analysis;
pub use bfdn_baselines;
pub use bfdn_sim;
pub use bfdn_trees;
pub use urn_game;
