# Convenience targets for the BFDN reproduction.

.PHONY: all test bench experiments experiments-quick docs lint clean

all: test

test:
	cargo test --workspace

bench:
	cargo bench --workspace

# Regenerates every table of EXPERIMENTS.md (plus CSVs under results/csv).
experiments:
	cargo run --release -p bfdn-bench --bin experiments -- all --csv results/csv

experiments-quick:
	cargo run --release -p bfdn-bench --bin experiments -- all --quick

docs:
	cargo doc --workspace --no-deps

lint:
	cargo fmt --all -- --check
	cargo clippy --workspace --all-targets -- -D warnings

clean:
	cargo clean
