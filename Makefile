# Convenience targets for the BFDN reproduction.

.PHONY: all test bench experiments experiments-quick serve load cluster-load docs lint clean

all: test

test:
	cargo test --workspace

bench:
	cargo bench --workspace

# Regenerates every table of EXPERIMENTS.md (plus CSVs under results/csv).
experiments:
	cargo run --release -p bfdn-bench --bin experiments -- all --csv results/csv

experiments-quick:
	cargo run --release -p bfdn-bench --bin experiments -- all --quick

# Starts the simulation-serving daemon (warm result cache in
# results/service-cache.jsonl survives restarts). Talk to it with
# `bfdn-request` or `sweep --via-service 127.0.0.1:4077`.
serve:
	mkdir -p results
	cargo run --release -p bfdn-service --bin bfdn-serve -- \
		--addr 127.0.0.1:4077 --spill results/service-cache.jsonl

# Deterministic load + chaos run against a daemon started with
# `make serve` (profile: quick|standard|chaos; see README).
load:
	mkdir -p results
	cargo run --release -p bfdn-loadgen --bin bfdn-load -- \
		--profile quick --seed 1 --report-json results/load-report.json

# Self-contained 3-shard cluster storm: spawns the shards, SIGKILLs
# shard 1 mid-storm, restarts it, and exits by the SLO verdict
# (Proposition 7 as an operational drill; see README §Cluster serving).
cluster-load:
	mkdir -p results
	cargo build --release -p bfdn-service
	cargo run --release -p bfdn-loadgen --bin bfdn-load -- \
		--profile quick --seed 1 \
		--cluster-shards 3 --shard-bin target/release/bfdn-serve \
		--kill-shard 1 --kill-at-ms 300 --restart-after-ms 300 \
		--report-json results/cluster-load-report.json

docs:
	cargo doc --workspace --no-deps

lint:
	cargo fmt --all -- --check
	cargo clippy --workspace --all-targets -- -D warnings

clean:
	cargo clean
